//! Lazy-reduction NTT microbenchmark: per-limb negacyclic transform cost
//! and ct-ct multiply latency, eager Barrett path (the pre-redesign
//! baseline arithmetic) vs the default lazy Harvey/Shoup path.
//!
//! ```sh
//! cargo run --release -p halo-bench --bin cycles_per_limb
//! ```
//!
//! Writes `BENCH_NTT.json` (schema `halo-bench-ntt/1`, destination
//! `HALO_BENCH_JSON_DIR`, default `results/`). Both paths compute
//! bit-identical canonical residues — the suites assert that — so this
//! benchmark is purely about the instruction count per butterfly.
//!
//! The acceptance bar is ≥2.0× on ct-ct multiply; like `hoist_speedup`
//! the gate only arms on machines with ≥4 CPUs (a loaded single-core
//! runner times too noisily), and `HALO_NTT_MIN` forces a bar anywhere.

use std::time::Instant;

use halo_bench::json::{self, num, Json};
use halo_ckks::backend::Backend;
use halo_ckks::toy::ntt::NttTable;
use halo_ckks::toy::poly::primes_near;
use halo_ckks::toy::{set_reduction_mode, ReductionMode};
use halo_ckks::{metrics, ToyBackend};

const N: usize = 4096;
const LEVELS: u32 = 8;
const REPS: u32 = 50;

/// Batches per timing estimate: each batch of `REPS` iterations is timed
/// whole and the *minimum* batch is reported — the standard noise-robust
/// aggregate (scheduler preemption and frequency dips only ever add
/// time, so the minimum is the best estimate of the true cost).
const BATCHES: u32 = 8;

/// Best-batch nanoseconds per round-trip (forward + inverse) transform.
fn time_ntt(table: &NttTable, limb: &mut [u64]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..REPS {
            table.forward(limb);
            table.inverse(limb);
            std::hint::black_box(&mut *limb);
        }
        // Two transforms per rep.
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / (2.0 * f64::from(REPS)));
    }
    best
}

/// Best-batch microseconds per ct-ct multiply (+relinearization).
fn time_mult(be: &ToyBackend, a: &halo_ckks::toy::ToyCt, b: &halo_ckks::toy::ToyCt) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..REPS {
            std::hint::black_box(be.mult(a, b).expect("mult"));
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e6 / f64::from(REPS));
    }
    best
}

fn main() {
    // A 59-bit NTT-friendly prime (≡ 1 mod 2N), same search the scheme
    // itself uses for its special prime.
    let p = primes_near(1 << 58, 2 * N as u64, 1)[0];
    let table = NttTable::new(N, p);
    let mut limb: Vec<u64> = (0..N as u64).map(|i| (i * 2654435761) % p).collect();

    set_reduction_mode(ReductionMode::Eager);
    let ntt_eager_ns = time_ntt(&table, &mut limb);
    set_reduction_mode(ReductionMode::Lazy);
    let ntt_lazy_ns = time_ntt(&table, &mut limb);
    let ntt_speedup = ntt_eager_ns / ntt_lazy_ns;

    let slots = N / 2;
    let va: Vec<f64> = (0..slots).map(|i| (i as f64 / 77.0).sin()).collect();
    let vb: Vec<f64> = (0..slots).map(|i| (i as f64 / 55.0).cos()).collect();

    set_reduction_mode(ReductionMode::Eager);
    let be = ToyBackend::new(N, LEVELS, 0x4CC);
    let ca = be.encrypt(&va, LEVELS).expect("encrypt a");
    let cb = be.encrypt(&vb, LEVELS).expect("encrypt b");
    std::hint::black_box(be.mult(&ca, &cb).expect("warm-up"));
    let mult_eager_us = time_mult(&be, &ca, &cb);

    set_reduction_mode(ReductionMode::Lazy);
    std::hint::black_box(be.mult(&ca, &cb).expect("warm-up"));
    metrics::reset();
    let mult_lazy_us = time_mult(&be, &ca, &cb);
    let lazy_skipped = metrics::snapshot().lazy_reductions_skipped;
    assert!(
        lazy_skipped > 0,
        "the lazy path must record deferred reductions"
    );
    let mult_speedup = mult_eager_us / mult_lazy_us;

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("NTT round-trip, N={N}, 59-bit prime, {REPS} reps, {cores} core(s)");
    println!("  eager (Barrett)    : {ntt_eager_ns:10.1} ns/limb");
    println!("  lazy (Harvey/Shoup): {ntt_lazy_ns:10.1} ns/limb  ({ntt_speedup:.2}x)");
    println!("ct-ct multiply, toy backend, N={N}, L={LEVELS}");
    println!("  eager              : {mult_eager_us:10.1} us");
    println!("  lazy               : {mult_lazy_us:10.1} us  ({mult_speedup:.2}x)");

    let doc = json::obj(vec![
        ("schema", Json::Str("halo-bench-ntt/1".into())),
        ("n", num(N as f64)),
        ("levels", num(f64::from(LEVELS))),
        ("reps", num(f64::from(REPS))),
        ("threads", num(cores as f64)),
        ("ntt_eager_ns_per_limb", num(ntt_eager_ns)),
        ("ntt_lazy_ns_per_limb", num(ntt_lazy_ns)),
        ("ntt_speedup", num(ntt_speedup)),
        ("mult_eager_us", num(mult_eager_us)),
        ("mult_lazy_us", num(mult_lazy_us)),
        ("mult_speedup", num(mult_speedup)),
        ("lazy_reductions_skipped", num(lazy_skipped as f64)),
    ]);
    json::validate_ntt(&doc).expect("emitted document must satisfy its own schema");
    let dir = halo_bench::bench_json_dir().expect("bench json dir");
    let path = dir.join("BENCH_NTT.json");
    std::fs::write(&path, doc.pretty()).expect("write BENCH_NTT.json");
    println!("  wrote              : {}", path.display());

    let min: Option<f64> = match std::env::var("HALO_NTT_MIN") {
        Ok(s) => s.parse().ok(),
        Err(_) if cores >= 4 => Some(2.0),
        Err(_) => {
            println!(
                "  gate               : skipped ({cores} core(s) < 4 — timing too noisy to gate)"
            );
            None
        }
    };
    if let Some(min) = min {
        if mult_speedup < min {
            eprintln!("FAIL: ct-ct multiply speedup {mult_speedup:.2}x below the {min:.1}x bar");
            std::process::exit(1);
        }
        println!("  gate               : PASS (>= {min:.1}x)");
    }
}
