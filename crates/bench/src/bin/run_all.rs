//! Regenerates every table and figure in sequence (the source of
//! `EXPERIMENTS.md`'s measured columns).
use halo_bench::tables::*;
fn main() {
    let scale = halo_bench::Scale::from_env();
    println!("== HALO evaluation, scale {scale:?} ==\n");
    print_table1(scale);
    println!();
    print_table2();
    println!();
    print_table3();
    println!();
    print_table4(scale, 12);
    println!();
    let rows = flat_config_rows(scale, PAPER_ITERS);
    print_table5(&rows, PAPER_ITERS);
    println!();
    print_fig4(&rows, PAPER_ITERS);
    println!();
    print_scaling("Table 6: compile time (s)", "compile time", &table6(scale));
    println!();
    print_scaling("Table 7: code size (KB)", "code size", &table7(scale));
    println!();
    let grid = pca_grid(scale, &[2, 4, 6, 8], &[2, 4, 6, 8]);
    print_fig5(&grid);
    println!();
    let t8: Vec<_> = grid
        .iter()
        .filter(|p| p.inner == 2 || p.inner == 8)
        .cloned()
        .collect();
    print_table8(&t8);
    println!();
    let seed = 1;
    print_recovery(&recovery_rows(scale, PAPER_ITERS, seed), seed);
}
