//! Regenerates every table and figure in sequence (the source of
//! `EXPERIMENTS.md`'s measured columns), then writes the run's
//! machine-readable trajectory to `BENCH_RUN_ALL.json` (schema
//! `halo-bench-run-all/1`, destination `HALO_BENCH_JSON_DIR`, default
//! `results/`).
use std::time::Instant;

use halo_bench::json::{self, num, Json};
use halo_bench::tables::*;
use halo_ckks::metrics;

fn main() {
    let wall = Instant::now();
    metrics::reset();
    let scale = halo_bench::Scale::from_env();
    println!("== HALO evaluation, scale {scale:?} ==\n");
    print_table1(scale);
    println!();
    print_table2();
    println!();
    print_table3();
    println!();
    print_table4(scale, 12);
    println!();
    let rows = flat_config_rows(scale, PAPER_ITERS);
    print_table5(&rows, PAPER_ITERS);
    println!();
    print_fig4(&rows, PAPER_ITERS);
    println!();
    print_scaling("Table 6: compile time (s)", "compile time", &table6(scale));
    println!();
    print_scaling("Table 7: code size (KB)", "code size", &table7(scale));
    println!();
    let grid = pca_grid(scale, &[2, 4, 6, 8], &[2, 4, 6, 8]);
    print_fig5(&grid);
    println!();
    let t8: Vec<_> = grid
        .iter()
        .filter(|p| p.inner == 2 || p.inner == 8)
        .cloned()
        .collect();
    print_table8(&t8);
    println!();
    let seed = 1;
    print_recovery(&recovery_rows(scale, PAPER_ITERS, seed), seed);
    println!();
    let serving = serving_rows(scale, seed);
    print_serving(&serving, seed);
    println!();
    let tuning = tuned_rows(scale);
    print_tuned(&tuning);

    let benchmarks: Vec<Json> = rows
        .iter()
        .map(|r| {
            json::obj(vec![
                ("bench", Json::Str(r.bench.into())),
                ("config", Json::Str(format!("{:?}", r.config))),
                ("bootstraps", num(r.bootstraps as f64)),
                ("total_us", num(r.total_us)),
                ("bootstrap_us", num(r.bootstrap_us)),
            ])
        })
        .collect();
    let doc = json::obj(vec![
        ("schema", Json::Str("halo-bench-run-all/1".into())),
        ("scale", Json::Str(format!("{scale:?}"))),
        ("iters", num(PAPER_ITERS as f64)),
        ("wall_ms", num(wall.elapsed().as_secs_f64() * 1e3)),
        ("poly_allocs", num(metrics::snapshot().poly_allocs as f64)),
        ("benchmarks", Json::Arr(benchmarks)),
        (
            "serving",
            Json::Arr(serving.iter().map(ServingRow::to_json).collect()),
        ),
        (
            "tuning",
            Json::Arr(tuning.iter().map(TuneRow::to_json).collect()),
        ),
    ]);
    json::validate_run_all(&doc).expect("emitted document must satisfy its own schema");
    let dir = halo_bench::bench_json_dir().expect("bench json dir");
    let path = dir.join("BENCH_RUN_ALL.json");
    std::fs::write(&path, doc.pretty()).expect("write BENCH_RUN_ALL.json");
    println!("\nwrote {}", path.display());
}
