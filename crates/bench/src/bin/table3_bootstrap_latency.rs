//! Regenerates Table 3 (bootstrap latency by target level).
fn main() {
    halo_bench::tables::print_table3();
}
