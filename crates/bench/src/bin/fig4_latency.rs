//! Regenerates Figure 4 (end-to-end latency with bootstrap share).
use halo_bench::tables::{flat_config_rows, print_fig4, PAPER_ITERS};
fn main() {
    let scale = halo_bench::Scale::from_env();
    let rows = flat_config_rows(scale, PAPER_ITERS);
    print_fig4(&rows, PAPER_ITERS);
}
