//! Regenerates Table 6 (compile time sweep).
use halo_bench::tables::{print_scaling, table6};
fn main() {
    let scale = halo_bench::Scale::from_env();
    print_scaling("Table 6: compile time (s)", "compile time", &table6(scale));
}
