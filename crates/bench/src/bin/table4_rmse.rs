//! Regenerates Table 4 (benchmark characteristics + RMSE).
fn main() {
    let scale = halo_bench::Scale::from_env();
    halo_bench::tables::print_table4(scale, 12);
}
