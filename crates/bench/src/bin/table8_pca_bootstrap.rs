//! Regenerates Table 8 (PCA bootstrap counts).
use halo_bench::tables::{pca_grid, print_table8};
fn main() {
    let scale = halo_bench::Scale::from_env();
    let points = pca_grid(scale, &[2, 4, 6, 8], &[2, 8]);
    print_table8(&points);
}
