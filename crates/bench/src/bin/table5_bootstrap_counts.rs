//! Regenerates Table 5 (bootstrap counts, 40 iterations, 5 compilers).
use halo_bench::tables::{flat_config_rows, print_table5, PAPER_ITERS};
fn main() {
    let scale = halo_bench::Scale::from_env();
    let rows = flat_config_rows(scale, PAPER_ITERS);
    print_table5(&rows, PAPER_ITERS);
}
