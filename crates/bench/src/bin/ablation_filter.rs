//! Ablation: DaCapo candidate-filter width vs. plan quality and compile
//! time (the design choice behind `CompileOptions::placement_filter`).
//!
//! The paper attributes DaCapo's misses to candidate filtering (§7.1);
//! this sweep quantifies the trade-off on the deepest benchmark.

use std::time::Instant;

use halo_bench::{bound_inputs, execute, options, Scale};
use halo_core::{compile, CompilerConfig};
use halo_ml::bench::{KMeans, MlBenchmark};

fn main() {
    let scale = Scale::from_env();
    let iters = 20u64;
    let spec = scale.spec();
    let src = KMeans.trace_constant(&spec, &[iters]);
    let inputs = bound_inputs(&KMeans, &[iters], scale);
    println!("Ablation: placement candidate-filter width (K-means, DaCapo, {iters} iters)");
    println!(
        "  {:>8} {:>12} {:>14} {:>14}",
        "filter", "bootstraps", "modeled (s)", "compile (s)"
    );
    for filter in [8usize, 16, 32, 64, 128, 256, 1024] {
        let mut opts = options(scale);
        opts.placement_filter = filter;
        let t = Instant::now();
        let compiled = compile(&src, CompilerConfig::DaCapo, &opts).expect("compiles");
        let compile_s = t.elapsed().as_secs_f64();
        let m = execute(&compiled.function, &inputs, scale, false);
        println!(
            "  {:>8} {:>12} {:>14.3} {:>14.3}",
            filter,
            m.stats.bootstrap_count,
            m.stats.total_us / 1e6,
            compile_s
        );
    }
    println!("  (wider filters find cheaper plans at higher compile cost — the");
    println!("   quadratic growth the paper reports for DaCapo's K-means.)");
}
