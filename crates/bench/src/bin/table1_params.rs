//! Regenerates Table 1 (FHE parameters).
fn main() {
    halo_bench::tables::print_table1(halo_bench::Scale::from_env());
}
