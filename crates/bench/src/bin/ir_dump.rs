//! Developer tool: print the compiled IR of any benchmark under any
//! configuration.
//!
//! ```sh
//! cargo run -p halo-bench --bin ir_dump -- Linear HALO
//! cargo run -p halo-bench --bin ir_dump -- PCA Type-matched
//! ```

use halo_bench::{compile_bench, Scale};
use halo_core::CompilerConfig;
use halo_ir::print::{code_size_bytes, print};
use halo_ml::bench::all_benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_name = args.first().map_or("Linear", String::as_str);
    let config_name = args.get(1).map_or("HALO", String::as_str);
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(bench_name))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {bench_name}; pick one of:");
            for b in all_benchmarks() {
                eprintln!("  {}", b.name());
            }
            std::process::exit(1);
        });
    let config = CompilerConfig::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(config_name))
        .unwrap_or_else(|| {
            eprintln!("unknown configuration {config_name}; pick one of:");
            for c in CompilerConfig::ALL {
                eprintln!("  {}", c.name());
            }
            std::process::exit(1);
        });
    let scale = Scale::Small;
    let iters: Vec<u64> = bench.trip_symbols().iter().map(|_| 8).collect();
    match compile_bench(bench.as_ref(), config, &iters, scale) {
        Ok(compiled) => {
            println!(
                "// {} under {} — peeled {}, packed {}, unrolled {}, tuned {},",
                bench.name(),
                config.name(),
                compiled.peeled,
                compiled.packed,
                compiled.unrolled,
                compiled.tuned
            );
            println!(
                "// {} static bootstraps, {} bytes printed+constants, compiled in {:?}",
                compiled.static_bootstraps,
                code_size_bytes(&compiled.function),
                compiled.compile_time
            );
            print!("{}", print(&compiled.function));
        }
        Err(e) => {
            eprintln!("compilation failed: {e}");
            std::process::exit(1);
        }
    }
}
