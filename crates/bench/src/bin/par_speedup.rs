//! Parallel-engine speedup microbenchmark: ct×ct multiply (+relinearize)
//! on the exact toy RNS-CKKS backend at N = 4096, timed at 1 thread vs
//! 4 threads over the same shared backend.
//!
//! ```sh
//! cargo run --release -p halo-bench --bin par_speedup
//! ```
//!
//! The acceptance bar for the parallel engine is ≥1.8× at 4 threads;
//! the run exits non-zero below that so CI-style invocations can gate
//! on it. The gate only arms when the machine actually has ≥4 CPUs —
//! on fewer cores the wall clock cannot speed up no matter how well the
//! engine scales, so the run reports and exits 0 (set `HALO_SPEEDUP_MIN`
//! to force a bar on any machine, or to raise/lower it).

use std::time::Instant;

use halo_ckks::backend::Backend;
use halo_ckks::{parallel, ToyBackend};

const N: usize = 4096;
const LEVELS: u32 = 8;
const REPS: u32 = 20;

/// Times `REPS` ct×ct multiplies (key-switching keys pre-warmed) and
/// returns the mean per-op microseconds.
fn time_mult(be: &ToyBackend) -> f64 {
    let slots = N / 2;
    let a0: Vec<f64> = (0..slots).map(|i| (i as f64 / 101.0).sin()).collect();
    let b0: Vec<f64> = (0..slots).map(|i| (i as f64 / 61.0).cos()).collect();
    let a = be.encrypt(&a0, LEVELS).expect("encrypt");
    let b = be.encrypt(&b0, LEVELS).expect("encrypt");
    // Warm-up: generates the relinearization key and touches every NTT
    // table, so the timed loop measures steady-state multiplies only.
    let warm = be.mult(&a, &b).expect("mult");
    std::hint::black_box(be.rescale(&warm).expect("rescale"));

    let start = Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(be.mult(&a, &b).expect("mult"));
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(REPS)
}

fn main() {
    let be = ToyBackend::new(N, LEVELS, 0xBE7C);

    parallel::set_threads(Some(1));
    let serial_us = time_mult(&be);
    parallel::set_threads(Some(4));
    let par_us = time_mult(&be);
    parallel::set_threads(None);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let speedup = serial_us / par_us;
    println!("ct×ct mult, toy backend, N={N}, L={LEVELS}, {REPS} reps, {cores} core(s)");
    println!("  1 thread : {serial_us:10.1} us/op");
    println!("  4 threads: {par_us:10.1} us/op");
    println!("  speedup  : {speedup:.2}x");

    let min: Option<f64> = match std::env::var("HALO_SPEEDUP_MIN") {
        Ok(s) => s.parse().ok(),
        Err(_) if cores >= 4 => Some(1.8),
        Err(_) => {
            println!("  gate     : skipped ({cores} core(s) < 4 — wall-clock speedup impossible)");
            None
        }
    };
    if let Some(min) = min {
        if speedup < min {
            eprintln!("FAIL: speedup {speedup:.2}x below the {min:.1}x bar");
            std::process::exit(1);
        }
        println!("  gate     : PASS (>= {min:.1}x)");
    }
}
