//! Remote-fault campaign: runs the `linear` benchmark durably through a
//! `RemoteStore` over a seeded flaky `SimObjectStore`, one fault profile
//! at a time (timeouts, transient errors, torn uploads, read bit-rot,
//! unavailability windows, and the combined chaos mix), then resumes —
//! both from the store the run left behind and from a remote seeded with
//! only a *prefix* of the uploaded objects (the state a mid-run machine
//! loss strands in the object store). Every leg must complete with zero
//! aborts and decrypt bit-identically (exact backend) to an
//! uninterrupted run.
//!
//! ```sh
//! cargo run --release -p halo-bench --bin remote_chaos
//! HALO_REMOTE_SEED=3 cargo run --release -p halo-bench --bin remote_chaos
//! ```
//!
//! Emits `results/REMOTE_REPORT.json` (schema `halo-remote-report/1`,
//! validated by `bench_json_check --remote`) and exits non-zero on any
//! divergence or abort. Spill directories live under
//! `target/remote_chaos/` (override with `HALO_REMOTE_DIR`).

use std::path::{Path, PathBuf};
use std::time::Instant;

use halo_bench::json::{self, num, obj, Json};
use halo_bench::Scale;
use halo_ckks::SimBackend;
use halo_core::{compile, CompilerConfig};
use halo_ir::Function;
use halo_ml::bench::{BenchSpec, Linear, MlBenchmark};
use halo_runtime::{
    DiskStore, ExecPolicy, Executor, Inputs, RemoteFaultSpec, RemotePolicy, RemoteStore, RunStats,
    SimObjectStore,
};

/// Loop iterations the benchmark runs (one snapshot generation each).
const ITERS: u64 = 12;

/// The fault profiles, each exercising one failure class in isolation
/// plus the combined chaos mix (and a healthy control). `blackout` makes
/// outages long enough to exhaust retry budgets, so the circuit breaker
/// and the write-behind spill provably engage.
fn profiles() -> Vec<(&'static str, RemoteFaultSpec)> {
    vec![
        ("none", RemoteFaultSpec::none()),
        ("timeouts", RemoteFaultSpec::timeouts()),
        ("transients", RemoteFaultSpec::transients()),
        ("torn_uploads", RemoteFaultSpec::torn_uploads()),
        ("bit_rot", RemoteFaultSpec::bit_rot()),
        ("outages", RemoteFaultSpec::outages()),
        (
            "blackout",
            RemoteFaultSpec {
                unavail: 0.25,
                unavail_window: 40,
                ..RemoteFaultSpec::none()
            },
        ),
        ("chaos", RemoteFaultSpec::chaos()),
    ]
}

/// The campaign's resilience policy: defaults, but with the hedge
/// deadline tightened to the latency distribution's tail (base 800 µs +
/// up to 400 µs jitter) so slow-but-not-stalled first reads also hedge.
fn remote_policy() -> RemotePolicy {
    RemotePolicy {
        hedge_after_us: 1_000.0,
        ..RemotePolicy::default()
    }
}

/// The benchmark program and its bound inputs for one dataset seed.
fn workload(seed: u64) -> (Function, Inputs) {
    let spec = BenchSpec {
        seed: 0x5E07 ^ seed,
        ..Scale::Small.spec()
    };
    let src = Linear.trace_dynamic(&spec);
    let compiled = compile(
        &src,
        CompilerConfig::Halo,
        &halo_bench::options(Scale::Small),
    )
    .expect("linear benchmark compiles");
    let mut inputs = Linear.inputs(&spec);
    for sym in Linear.trip_symbols() {
        inputs = inputs.env(sym, ITERS);
    }
    (compiled.function, inputs)
}

fn backend() -> SimBackend {
    SimBackend::exact(Scale::Small.params())
}

fn bits(outputs: &[Vec<f64>]) -> Vec<Vec<u64>> {
    outputs
        .iter()
        .map(|v| v.iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn policy() -> ExecPolicy {
    ExecPolicy::durable("/unused") // store is always passed explicitly
}

struct Trial {
    profile: &'static str,
    seed: u64,
    kind: &'static str,
    faults_injected: u64,
    snapshot_writes: u64,
    remote_puts: u64,
    remote_retries: u64,
    remote_backoff_us: f64,
    hedged_reads: u64,
    breaker_opens: u64,
    spilled_snapshots: u64,
    bit_identical: bool,
    aborted: bool,
}

impl Trial {
    fn from_stats(
        profile: &'static str,
        seed: u64,
        kind: &'static str,
        faults_injected: u64,
        stats: &RunStats,
        bit_identical: bool,
    ) -> Trial {
        Trial {
            profile,
            seed,
            kind,
            faults_injected,
            snapshot_writes: stats.snapshot_writes,
            remote_puts: stats.remote_puts,
            remote_retries: stats.remote_retries,
            remote_backoff_us: stats.remote_backoff_us,
            hedged_reads: stats.hedged_reads,
            breaker_opens: stats.breaker_opens,
            spilled_snapshots: stats.spilled_snapshots,
            bit_identical,
            aborted: false,
        }
    }

    fn aborted(profile: &'static str, seed: u64, kind: &'static str) -> Trial {
        Trial {
            profile,
            seed,
            kind,
            faults_injected: 0,
            snapshot_writes: 0,
            remote_puts: 0,
            remote_retries: 0,
            remote_backoff_us: 0.0,
            hedged_reads: 0,
            breaker_opens: 0,
            spilled_snapshots: 0,
            bit_identical: false,
            aborted: true,
        }
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("profile", Json::Str(self.profile.into())),
            ("seed", num(self.seed as f64)),
            ("kind", Json::Str(self.kind.into())),
            ("faults_injected", num(self.faults_injected as f64)),
            ("snapshot_writes", num(self.snapshot_writes as f64)),
            ("remote_puts", num(self.remote_puts as f64)),
            ("remote_retries", num(self.remote_retries as f64)),
            ("remote_backoff_us", num(self.remote_backoff_us)),
            ("hedged_reads", num(self.hedged_reads as f64)),
            ("breaker_opens", num(self.breaker_opens as f64)),
            ("spilled_snapshots", num(self.spilled_snapshots as f64)),
            ("bit_identical", Json::Bool(self.bit_identical)),
        ])
    }
}

/// Builds the resilient store for one campaign leg: flaky simulated
/// remote plus a fresh local spill directory.
fn build_store(
    spec: RemoteFaultSpec,
    sim_seed: u64,
    jitter_seed: u64,
    spill_dir: &Path,
) -> RemoteStore<SimObjectStore> {
    let _ = std::fs::remove_dir_all(spill_dir);
    RemoteStore::new(
        SimObjectStore::new(spec, sim_seed),
        remote_policy(),
        jitter_seed,
    )
    .with_spill(DiskStore::open(spill_dir, 0).expect("open spill store"))
}

/// One fault profile × one seed: the durable run plus both resume legs.
fn run_profile(
    profile: &'static str,
    spec: RemoteFaultSpec,
    seed: u64,
    base: &Path,
    baseline: &[Vec<u64>],
    trials: &mut Vec<Trial>,
) {
    let (f, inputs) = workload(seed);
    let dir = base.join(format!("{profile}-s{seed}"));

    // Leg 1 — "run": the full durable run through the flaky remote.
    let store = build_store(spec, seed, seed, &dir.join("run-spill"));
    let run_trial = {
        let be = backend();
        match Executor::with_policy(&be, policy()).run_durable_with_store(&f, &inputs, &store) {
            Ok(out) => Trial::from_stats(
                profile,
                seed,
                "run",
                store.remote().report().total(),
                &out.stats,
                bits(&out.outputs) == baseline,
            ),
            Err(e) => {
                eprintln!("ABORT run {profile} seed={seed}: {e}");
                Trial::aborted(profile, seed, "run")
            }
        }
    };
    trials.push(run_trial);

    // Leg 2 — "resume": continue from everything the run left behind
    // (remote objects + local spill), as the same machine would after a
    // crash.
    let faults_before = store.remote().report().total();
    let resume_trial = {
        let be = backend();
        match Executor::with_policy(&be, policy()).resume_with_store(&f, &inputs, &store) {
            Ok(out) => Trial::from_stats(
                profile,
                seed,
                "resume",
                store.remote().report().total() - faults_before,
                &out.stats,
                bits(&out.outputs) == baseline,
            ),
            Err(e) => {
                eprintln!("ABORT resume {profile} seed={seed}: {e}");
                Trial::aborted(profile, seed, "resume")
            }
        }
    };
    trials.push(resume_trial);

    // Leg 3 — "resume_prefix": a *different* machine resumes with only
    // the oldest half of the run's uploaded objects present (the state a
    // mid-run machine loss strands in the object store) and an empty
    // local spill. Torn or missing newer generations must degrade to
    // fallback or a fresh start, never an abort.
    let objects = store.remote().objects();
    let prefix_store = build_store(
        spec,
        seed ^ 0x00D1_F00D,
        seed ^ 0x00D1_F00D,
        &dir.join("prefix-spill"),
    );
    for (key, bytes) in objects.iter().take(objects.len() / 2) {
        prefix_store.remote().insert_raw(key, bytes);
    }
    let faults_before = prefix_store.remote().report().total();
    let prefix_trial = {
        let be = backend();
        match Executor::with_policy(&be, policy()).resume_with_store(&f, &inputs, &prefix_store) {
            Ok(out) => Trial::from_stats(
                profile,
                seed,
                "resume_prefix",
                prefix_store.remote().report().total() - faults_before,
                &out.stats,
                bits(&out.outputs) == baseline,
            ),
            Err(e) => {
                eprintln!("ABORT resume_prefix {profile} seed={seed}: {e}");
                Trial::aborted(profile, seed, "resume_prefix")
            }
        }
    };
    trials.push(prefix_trial);
}

fn main() {
    let start = Instant::now();
    let base = PathBuf::from(
        std::env::var("HALO_REMOTE_DIR").unwrap_or_else(|_| "target/remote_chaos".into()),
    );
    // One seed from the CI matrix, or a two-seed sweep locally.
    let seeds: Vec<u64> = match std::env::var("HALO_REMOTE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(s) => vec![s],
        None => vec![1, 2],
    };

    let mut trials = Vec::new();
    for &seed in &seeds {
        // Uninterrupted baseline on the exact backend: zero noise, so
        // bit-identity is the only acceptable outcome for every leg.
        let (f, inputs) = workload(seed);
        let be = backend();
        let baseline = bits(
            &Executor::with_policy(&be, policy())
                .run(&f, &inputs)
                .expect("baseline run")
                .outputs,
        );
        for (profile, spec) in profiles() {
            run_profile(profile, spec, seed, &base, &baseline, &mut trials);
        }
    }

    for t in &trials {
        println!(
            "{} {:<13} {:<13} seed={}: faults={} puts={} retries={} hedged={} breaker={} spilled={}",
            if t.bit_identical { "OK  " } else { "FAIL" },
            t.profile,
            t.kind,
            t.seed,
            t.faults_injected,
            t.remote_puts,
            t.remote_retries,
            t.hedged_reads,
            t.breaker_opens,
            t.spilled_snapshots,
        );
    }

    let passed = trials.iter().filter(|t| t.bit_identical).count();
    let failed = trials.len() - passed;
    let aborts = trials.iter().filter(|t| t.aborted).count();
    let faults_total: u64 = trials.iter().map(|t| t.faults_injected).sum();
    let doc = obj(vec![
        ("schema", Json::Str("halo-remote-report/1".into())),
        ("bench", Json::Str(Linear.name().into())),
        ("scale", Json::Str("small".into())),
        ("iters", num(ITERS as f64)),
        ("seeds", num(seeds.len() as f64)),
        ("profiles", num(profiles().len() as f64)),
        ("wall_ms", num(start.elapsed().as_secs_f64() * 1e3)),
        ("faults_injected", num(faults_total as f64)),
        ("passed", num(passed as f64)),
        ("failed", num(failed as f64)),
        ("aborts", num(aborts as f64)),
        (
            "trials",
            Json::Arr(trials.iter().map(Trial::to_json).collect()),
        ),
    ]);

    let dir = halo_bench::bench_json_dir().expect("bench json dir");
    let out = dir.join("REMOTE_REPORT.json");
    std::fs::write(&out, doc.pretty()).expect("write report");
    println!(
        "wrote {} ({} trials, {passed} passed, {failed} failed, {aborts} aborts, {faults_total} faults injected)",
        out.display(),
        trials.len(),
    );
    if failed > 0 {
        std::process::exit(1);
    }
    json::validate_remote_report(&doc).expect("self-check: emitted report must satisfy its schema");
}
