//! CI schema check for the machine-readable bench artifacts: parses and
//! validates `BENCH_ROTATE.json`, `BENCH_RUN_ALL.json`, and — when
//! present or made mandatory with `--ntt` / `--fuzz` / `--crash` — the
//! `BENCH_NTT.json` microbenchmark and the `FUZZ_REPORT.json` /
//! `CRASH_REPORT.json` campaign reports, all from `HALO_BENCH_JSON_DIR`
//! (default `results/`), exiting non-zero on the first violation.
//!
//! ```sh
//! cargo run --release -p halo-bench --bin bench_json_check
//! cargo run --release -p halo-bench --bin bench_json_check -- --ntt
//! cargo run --release -p halo-bench --bin bench_json_check -- --fuzz
//! cargo run --release -p halo-bench --bin bench_json_check -- --crash
//! ```

use halo_bench::json::{self, Json};

fn check(name: &str, validate: fn(&Json) -> Result<(), String>) -> Result<(), String> {
    let dir = halo_bench::bench_json_dir().map_err(|e| format!("{name}: {e}"))?;
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{name}: parse error: {e}"))?;
    validate(&doc).map_err(|e| format!("{name}: schema violation: {e}"))?;
    println!("OK {}", path.display());
    Ok(())
}

fn main() {
    // `--fuzz` / `--crash` make the respective campaign report mandatory
    // (the fuzz-smoke and crash-resume CI jobs); otherwise each is
    // validated only if present, so plain bench runs don't require a
    // fuzzing or crash campaign first.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_ntt = args.iter().any(|a| a == "--ntt");
    let require_fuzz = args.iter().any(|a| a == "--fuzz");
    let require_crash = args.iter().any(|a| a == "--crash");
    let present = |name: &str| {
        halo_bench::bench_json_dir()
            .map(|d| d.join(name).exists())
            .unwrap_or(false)
    };

    let mut results = vec![
        check("BENCH_ROTATE.json", json::validate_rotate),
        check("BENCH_RUN_ALL.json", json::validate_run_all),
    ];
    if require_ntt || present("BENCH_NTT.json") {
        results.push(check("BENCH_NTT.json", json::validate_ntt));
    }
    if require_fuzz || present("FUZZ_REPORT.json") {
        results.push(check("FUZZ_REPORT.json", json::validate_fuzz_report));
    }
    if require_crash || present("CRASH_REPORT.json") {
        results.push(check("CRASH_REPORT.json", json::validate_crash_report));
    }
    let mut failed = false;
    for r in results {
        if let Err(e) = r {
            eprintln!("FAIL {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
