//! CI schema check for the machine-readable bench artifacts: parses and
//! validates `BENCH_ROTATE.json` and `BENCH_RUN_ALL.json` from
//! `HALO_BENCH_JSON_DIR` (default `results/`), exiting non-zero on the
//! first violation.
//!
//! ```sh
//! cargo run --release -p halo-bench --bin bench_json_check
//! ```

use halo_bench::json::{self, Json};

fn check(name: &str, validate: fn(&Json) -> Result<(), String>) -> Result<(), String> {
    let dir = halo_bench::bench_json_dir().map_err(|e| format!("{name}: {e}"))?;
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{name}: parse error: {e}"))?;
    validate(&doc).map_err(|e| format!("{name}: schema violation: {e}"))?;
    println!("OK {}", path.display());
    Ok(())
}

fn main() {
    let results = [
        check("BENCH_ROTATE.json", json::validate_rotate),
        check("BENCH_RUN_ALL.json", json::validate_run_all),
    ];
    let mut failed = false;
    for r in results {
        if let Err(e) = r {
            eprintln!("FAIL {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
