//! CI schema check for the machine-readable bench artifacts: parses and
//! validates `BENCH_ROTATE.json`, `BENCH_RUN_ALL.json`, and — when
//! present or made mandatory with `--ntt` / `--serve` / `--tune` /
//! `--fuzz` / `--crash` / `--remote` / `--fleet` — the `BENCH_NTT.json`
//! microbenchmark, the `BENCH_SERVE.json` serving campaign, the
//! `BENCH_TUNE.json` autotuner sweep, and the `FUZZ_REPORT.json` /
//! `CRASH_REPORT.json` / `REMOTE_REPORT.json` / `FLEET_REPORT.json`
//! campaign reports, all from
//! `HALO_BENCH_JSON_DIR` (default `results/`), exiting non-zero on the
//! first violation. `--all` instead sweeps every `*.json` in the
//! directory through its validator (unknown file names are themselves
//! violations — an artifact nobody validates is an artifact nobody can
//! trust).
//!
//! ```sh
//! cargo run --release -p halo-bench --bin bench_json_check
//! cargo run --release -p halo-bench --bin bench_json_check -- --ntt
//! cargo run --release -p halo-bench --bin bench_json_check -- --serve
//! cargo run --release -p halo-bench --bin bench_json_check -- --tune
//! cargo run --release -p halo-bench --bin bench_json_check -- --fuzz
//! cargo run --release -p halo-bench --bin bench_json_check -- --crash
//! cargo run --release -p halo-bench --bin bench_json_check -- --remote
//! cargo run --release -p halo-bench --bin bench_json_check -- --fleet
//! cargo run --release -p halo-bench --bin bench_json_check -- --all
//! ```

use halo_bench::json::{self, Json};

type Validator = fn(&Json) -> Result<(), String>;

/// Maps an artifact file name to its schema validator.
fn validator_for(name: &str) -> Option<Validator> {
    match name {
        "BENCH_ROTATE.json" => Some(json::validate_rotate),
        "BENCH_RUN_ALL.json" => Some(json::validate_run_all),
        "BENCH_NTT.json" => Some(json::validate_ntt),
        "BENCH_SERVE.json" => Some(json::validate_serve),
        "BENCH_TUNE.json" => Some(json::validate_tune),
        "FUZZ_REPORT.json" => Some(json::validate_fuzz_report),
        "CRASH_REPORT.json" => Some(json::validate_crash_report),
        "REMOTE_REPORT.json" => Some(json::validate_remote_report),
        "FLEET_REPORT.json" => Some(json::validate_fleet_report),
        _ => None,
    }
}

fn check(name: &str, validate: fn(&Json) -> Result<(), String>) -> Result<(), String> {
    let dir = halo_bench::bench_json_dir().map_err(|e| format!("{name}: {e}"))?;
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{name}: parse error: {e}"))?;
    validate(&doc).map_err(|e| format!("{name}: schema violation: {e}"))?;
    println!("OK {}", path.display());
    Ok(())
}

/// Every `*.json` in the artifact directory, validated by file name.
fn check_all() -> Vec<Result<(), String>> {
    let dir = match halo_bench::bench_json_dir() {
        Ok(d) => d,
        Err(e) => return vec![Err(format!("--all: {e}"))],
    };
    let mut names: Vec<String> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".json"))
            .collect(),
        Err(e) => return vec![Err(format!("--all: cannot read {}: {e}", dir.display()))],
    };
    names.sort();
    if names.is_empty() {
        return vec![Err(format!(
            "--all: no *.json artifacts in {}",
            dir.display()
        ))];
    }
    names
        .into_iter()
        .map(|name| match validator_for(&name) {
            Some(validate) => check(&name, validate),
            None => Err(format!("{name}: no validator registered for this artifact")),
        })
        .collect()
}

fn main() {
    // `--serve` / `--fuzz` / `--crash` / `--remote` / `--fleet` make the
    // respective
    // campaign report mandatory (their CI jobs); otherwise each is
    // validated only if present, so plain bench runs don't require a
    // campaign first.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_ntt = args.iter().any(|a| a == "--ntt");
    let require_serve = args.iter().any(|a| a == "--serve");
    let require_tune = args.iter().any(|a| a == "--tune");
    let require_fuzz = args.iter().any(|a| a == "--fuzz");
    let require_crash = args.iter().any(|a| a == "--crash");
    let require_remote = args.iter().any(|a| a == "--remote");
    let require_fleet = args.iter().any(|a| a == "--fleet");
    let all = args.iter().any(|a| a == "--all");
    let present = |name: &str| {
        halo_bench::bench_json_dir()
            .map(|d| d.join(name).exists())
            .unwrap_or(false)
    };

    let results = if all {
        check_all()
    } else {
        let mut results = vec![
            check("BENCH_ROTATE.json", json::validate_rotate),
            check("BENCH_RUN_ALL.json", json::validate_run_all),
        ];
        if require_ntt || present("BENCH_NTT.json") {
            results.push(check("BENCH_NTT.json", json::validate_ntt));
        }
        if require_serve || present("BENCH_SERVE.json") {
            results.push(check("BENCH_SERVE.json", json::validate_serve));
        }
        if require_tune || present("BENCH_TUNE.json") {
            results.push(check("BENCH_TUNE.json", json::validate_tune));
        }
        if require_fuzz || present("FUZZ_REPORT.json") {
            results.push(check("FUZZ_REPORT.json", json::validate_fuzz_report));
        }
        if require_crash || present("CRASH_REPORT.json") {
            results.push(check("CRASH_REPORT.json", json::validate_crash_report));
        }
        if require_remote || present("REMOTE_REPORT.json") {
            results.push(check("REMOTE_REPORT.json", json::validate_remote_report));
        }
        if require_fleet || present("FLEET_REPORT.json") {
            results.push(check("FLEET_REPORT.json", json::validate_fleet_report));
        }
        results
    };
    let mut failed = false;
    for r in results {
        if let Err(e) = r {
            eprintln!("FAIL {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
