//! Regenerates Table 2 (op latency by level).
fn main() {
    halo_bench::tables::print_table2();
}
