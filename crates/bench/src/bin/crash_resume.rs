//! Process-level crash-resume harness: spawns a child process running the
//! `linear` benchmark under durable execution, SIGKILLs it at a matrix of
//! snapshot generations, resumes from the on-disk store, and asserts the
//! final decrypted output is bit-identical (exact backend) to an
//! uninterrupted run. A corruption leg damages the newest generation file
//! and asserts resume falls back to the previous generation.
//!
//! ```sh
//! cargo run --release -p halo-bench --bin crash_resume
//! ```
//!
//! Emits `results/CRASH_REPORT.json` (schema `halo-crash-report/1`,
//! validated by `bench_json_check --crash`) and exits non-zero on any
//! divergence or abort. Work directories live under
//! `target/crash_resume/` (override with `HALO_CRASH_DIR`); the child is
//! this same binary re-invoked with `--child`, slowed to one snapshot per
//! `HALO_SNAP_DELAY_MS` so the parent can aim its kill.

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use halo_bench::json::{self, num, obj, Json};
use halo_bench::Scale;
use halo_ckks::SimBackend;
use halo_core::{compile, CompilerConfig};
use halo_ir::Function;
use halo_ml::bench::{BenchSpec, Linear, MlBenchmark};
use halo_runtime::{DiskStore, ExecPolicy, Executor, Inputs, SnapshotStore};

/// Loop iterations the benchmark runs (one snapshot generation each).
const ITERS: u64 = 12;
/// Snapshot generations after which the child is killed.
const KILL_POINTS: [u64; 6] = [1, 2, 4, 6, 8, 10];
/// Dataset seeds: each changes the encrypted inputs, so bit-identity is
/// re-proven on different ciphertext contents.
const SEEDS: [u64; 2] = [1, 2];
/// Generations the store retains (≥ 2 so fallback has somewhere to go).
const KEEP: usize = 3;

/// Wraps the disk store so every snapshot write takes a visible amount of
/// wall time — the window the parent uses to land its SIGKILL between
/// generations rather than straddling the whole run in one scheduler tick.
struct DelayStore {
    inner: DiskStore,
    delay: Duration,
}

impl SnapshotStore for DelayStore {
    fn put(&self, bytes: &[u8]) -> io::Result<u64> {
        std::thread::sleep(self.delay);
        self.inner.put(bytes)
    }
    fn generations(&self) -> io::Result<Vec<u64>> {
        self.inner.generations()
    }
    fn get(&self, generation: u64) -> io::Result<Vec<u8>> {
        self.inner.get(generation)
    }
}

/// The benchmark program and its bound inputs for one dataset seed.
fn workload(seed: u64) -> (Function, Inputs) {
    let spec = BenchSpec {
        seed: 0xC4A5 ^ seed,
        ..Scale::Small.spec()
    };
    let src = Linear.trace_dynamic(&spec);
    let compiled = compile(
        &src,
        CompilerConfig::Halo,
        &halo_bench::options(Scale::Small),
    )
    .expect("linear benchmark compiles");
    let mut inputs = Linear.inputs(&spec);
    for sym in Linear.trip_symbols() {
        inputs = inputs.env(sym, ITERS);
    }
    (compiled.function, inputs)
}

fn backend() -> SimBackend {
    SimBackend::exact(Scale::Small.params())
}

fn bits(outputs: &[Vec<f64>]) -> Vec<Vec<u64>> {
    outputs
        .iter()
        .map(|v| v.iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn policy(dir: &Path) -> ExecPolicy {
    ExecPolicy {
        snapshot_keep: KEEP,
        ..ExecPolicy::durable(dir)
    }
}

/// Child mode: run the workload durably into `dir`, one delayed snapshot
/// per loop iteration, until killed (or done).
fn run_child(dir: &Path, seed: u64) -> ! {
    let delay_ms: u64 = std::env::var("HALO_SNAP_DELAY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let (f, inputs) = workload(seed);
    let store = DelayStore {
        inner: DiskStore::open(dir, KEEP).expect("open store"),
        delay: Duration::from_millis(delay_ms),
    };
    let be = backend();
    Executor::with_policy(&be, policy(dir))
        .run_durable_with_store(&f, &inputs, &store)
        .expect("child run");
    std::process::exit(0);
}

struct Trial {
    kind: &'static str,
    seed: u64,
    kill_point: u64,
    generations_at_resume: usize,
    resumes_from_disk: u64,
    corrupt_snapshots_skipped: u64,
    bit_identical: bool,
    aborted: bool,
}

impl Trial {
    fn to_json(&self) -> Json {
        obj(vec![
            ("kind", Json::Str(self.kind.into())),
            ("seed", num(self.seed as f64)),
            ("kill_point", num(self.kill_point as f64)),
            (
                "generations_at_resume",
                num(self.generations_at_resume as f64),
            ),
            ("resumes_from_disk", num(self.resumes_from_disk as f64)),
            (
                "corrupt_snapshots_skipped",
                num(self.corrupt_snapshots_skipped as f64),
            ),
            ("bit_identical", Json::Bool(self.bit_identical)),
        ])
    }
}

/// Resume in-process from `dir` and compare against the baseline bits.
fn resume_and_compare(
    kind: &'static str,
    dir: &Path,
    seed: u64,
    kill_point: u64,
    baseline: &[Vec<u64>],
) -> Trial {
    let (f, inputs) = workload(seed);
    let generations_at_resume = DiskStore::open(dir, KEEP)
        .and_then(|s| s.generations())
        .map(|g| g.len())
        .unwrap_or(0);
    let be = backend();
    match Executor::with_policy(&be, policy(dir)).resume(&f, &inputs) {
        Ok(out) => Trial {
            kind,
            seed,
            kill_point,
            generations_at_resume,
            resumes_from_disk: out.stats.resumes_from_disk,
            corrupt_snapshots_skipped: out.stats.corrupt_snapshots_skipped,
            bit_identical: bits(&out.outputs) == baseline,
            aborted: false,
        },
        Err(e) => {
            eprintln!("ABORT {kind} k={kill_point} seed={seed}: {e}");
            Trial {
                kind,
                seed,
                kill_point,
                generations_at_resume,
                resumes_from_disk: 0,
                corrupt_snapshots_skipped: 0,
                bit_identical: false,
                aborted: true,
            }
        }
    }
}

/// Kill trial: spawn the child, wait for `kill_point` generations, SIGKILL
/// it, resume from disk.
fn kill_trial(base: &Path, kill_point: u64, seed: u64, baseline: &[Vec<u64>]) -> Trial {
    let dir = base.join(format!("kill-k{kill_point}-s{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create trial dir");

    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .args(["--child", "--dir"])
        .arg(&dir)
        .args(["--seed", &seed.to_string()])
        .env("HALO_SNAP_DELAY_MS", "40")
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child");

    // Generation numbers grow monotonically even though pruning caps the
    // file count at KEEP, so poll the newest number, not the count.
    let store = DiskStore::open(&dir, KEEP).expect("open store");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let newest = store
            .generations()
            .ok()
            .and_then(|g| g.last().copied())
            .unwrap_or(0);
        if newest >= kill_point || Instant::now() > deadline {
            break;
        }
        if child.try_wait().expect("try_wait").is_some() {
            break; // child finished before the kill point
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill(); // SIGKILL on unix: no destructors, no flushing
    let _ = child.wait();

    resume_and_compare("kill", &dir, seed, kill_point, baseline)
}

/// Corruption trial: run durably to completion in-process, flip a byte in
/// the newest generation file, resume — must fall back, not abort.
fn corrupt_trial(base: &Path, seed: u64, baseline: &[Vec<u64>]) -> Trial {
    let dir = base.join(format!("corrupt-s{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create trial dir");

    let (f, inputs) = workload(seed);
    let be = backend();
    Executor::with_policy(&be, policy(&dir))
        .run_durable(&f, &inputs)
        .expect("uninterrupted durable run");

    let store = DiskStore::open(&dir, KEEP).expect("open store");
    let newest = *store
        .generations()
        .expect("generations")
        .last()
        .expect("at least one generation");
    let path = dir.join(format!("snap-{newest:016x}.halosnap"));
    let mut bytes = std::fs::read(&path).expect("read newest generation");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write corrupted generation");

    let mut t = resume_and_compare("corrupt", &dir, seed, newest, baseline);
    if t.corrupt_snapshots_skipped < 1 || t.resumes_from_disk < 1 {
        eprintln!(
            "FAIL corrupt seed={seed}: expected generation fallback, got \
             skipped={} resumes={}",
            t.corrupt_snapshots_skipped, t.resumes_from_disk
        );
        t.bit_identical = false;
    }
    t
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--child") {
        let dir = args
            .iter()
            .position(|a| a == "--dir")
            .and_then(|i| args.get(i + 1))
            .expect("--child requires --dir");
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .expect("--child requires --seed");
        run_child(Path::new(dir), seed);
    }

    let start = Instant::now();
    let base = PathBuf::from(
        std::env::var("HALO_CRASH_DIR").unwrap_or_else(|_| "target/crash_resume".into()),
    );

    let mut trials = Vec::new();
    for &seed in &SEEDS {
        // Uninterrupted baseline, same backend construction as every
        // resume (exact backend: zero noise, so bit-identity is the only
        // acceptable outcome).
        let (f, inputs) = workload(seed);
        let be = backend();
        let baseline = bits(
            &Executor::with_policy(&be, policy(&base))
                .run(&f, &inputs)
                .expect("baseline run")
                .outputs,
        );

        for &k in &KILL_POINTS {
            let t = kill_trial(&base, k, seed, &baseline);
            println!(
                "{} kill k={k} seed={seed}: gens={} resumed={} skipped={}",
                if t.bit_identical { "OK  " } else { "FAIL" },
                t.generations_at_resume,
                t.resumes_from_disk,
                t.corrupt_snapshots_skipped,
            );
            trials.push(t);
        }

        let t = corrupt_trial(&base, seed, &baseline);
        println!(
            "{} corrupt seed={seed}: gens={} resumed={} skipped={}",
            if t.bit_identical { "OK  " } else { "FAIL" },
            t.generations_at_resume,
            t.resumes_from_disk,
            t.corrupt_snapshots_skipped,
        );
        trials.push(t);
    }

    let passed = trials.iter().filter(|t| t.bit_identical).count();
    let failed = trials.len() - passed;
    let aborts = trials.iter().filter(|t| t.aborted).count();
    let doc = obj(vec![
        ("schema", Json::Str("halo-crash-report/1".into())),
        ("bench", Json::Str(Linear.name().into())),
        ("scale", Json::Str("small".into())),
        ("iters", num(ITERS as f64)),
        ("snapshot_keep", num(KEEP as f64)),
        ("seeds", num(SEEDS.len() as f64)),
        ("wall_ms", num(start.elapsed().as_secs_f64() * 1e3)),
        ("passed", num(passed as f64)),
        ("failed", num(failed as f64)),
        ("aborts", num(aborts as f64)),
        (
            "trials",
            Json::Arr(trials.iter().map(Trial::to_json).collect()),
        ),
    ]);

    let dir = halo_bench::bench_json_dir().expect("bench json dir");
    let out = dir.join("CRASH_REPORT.json");
    std::fs::write(&out, doc.pretty()).expect("write report");
    println!(
        "wrote {} ({} trials, {passed} passed, {failed} failed, {aborts} aborts)",
        out.display(),
        trials.len(),
    );
    if failed > 0 {
        std::process::exit(1);
    }
    json::validate_crash_report(&doc).expect("self-check: emitted report must satisfy its schema");
}
