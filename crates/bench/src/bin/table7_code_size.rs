//! Regenerates Table 7 (code size sweep).
use halo_bench::tables::{print_scaling, table7};
fn main() {
    let scale = halo_bench::Scale::from_env();
    print_scaling("Table 7: code size (KB)", "code size", &table7(scale));
}
