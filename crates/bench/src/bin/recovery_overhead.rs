//! Prints the recovery-overhead table: the resilient executor under a
//! seeded 5 % transient-fault schedule vs the fault-free baseline.
use halo_bench::tables::{print_recovery, recovery_rows, PAPER_ITERS};
fn main() {
    let scale = halo_bench::Scale::from_env();
    let seed = 1;
    print_recovery(&recovery_rows(scale, PAPER_ITERS, seed), seed);
}
