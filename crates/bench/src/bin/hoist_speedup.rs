//! Hoisted-rotation speedup microbenchmark: rotating one ciphertext by
//! `BATCH` offsets on the exact toy RNS-CKKS backend, sequential
//! (`rotate` per offset — one digit decomposition each) vs hoisted
//! (`rotate_batch` — one shared decomposition).
//!
//! ```sh
//! cargo run --release -p halo-bench --bin hoist_speedup
//! ```
//!
//! Writes `BENCH_ROTATE.json` (schema `halo-bench-rotate/1`, destination
//! `HALO_BENCH_JSON_DIR`, default `results/`) with the timings and the
//! op/alloc counter snapshots proving the hoisting contract: exactly one
//! digit decomposition per batch.
//!
//! The acceptance bar is ≥1.5× for a batch of 8; like `par_speedup` the
//! gate only arms on machines with ≥4 CPUs (a loaded single-core runner
//! times too noisily), and `HALO_HOIST_MIN` forces a bar anywhere.

use std::time::Instant;

use halo_bench::json::{self, num, Json};
use halo_ckks::backend::Backend;
use halo_ckks::{metrics, ToyBackend};

const N: usize = 4096;
const LEVELS: u32 = 8;
const REPS: u32 = 10;
const OFFSETS: [i64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Mean microseconds per *batch* over `REPS` runs of `f`.
fn time_batch(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..REPS {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(REPS)
}

fn counters_json(s: metrics::MetricsSnapshot) -> Json {
    json::obj(vec![
        ("poly_allocs", num(s.poly_allocs as f64)),
        ("digit_decomposes", num(s.digit_decomposes as f64)),
        ("digit_ntt_rows", num(s.digit_ntt_rows as f64)),
    ])
}

fn main() {
    let be = ToyBackend::new(N, LEVELS, 0x4015);
    let slots = N / 2;
    let values: Vec<f64> = (0..slots).map(|i| (i as f64 / 77.0).sin()).collect();
    let ct = be.encrypt(&values, LEVELS).expect("encrypt");

    // Warm-up: generate every Galois key and touch every NTT table so the
    // timed loops measure steady-state key switching only.
    std::hint::black_box(be.rotate_batch(&ct, &OFFSETS).expect("warm-up"));

    // Counter snapshots (one pass each) — the hoisting contract.
    metrics::reset();
    std::hint::black_box(
        OFFSETS
            .iter()
            .map(|&o| be.rotate(&ct, o).expect("rotate"))
            .collect::<Vec<_>>(),
    );
    let seq_counters = metrics::snapshot();
    metrics::reset();
    std::hint::black_box(be.rotate_batch(&ct, &OFFSETS).expect("rotate_batch"));
    let hoist_counters = metrics::snapshot();
    assert_eq!(
        hoist_counters.digit_decomposes, 1,
        "hoisted batch must decompose exactly once"
    );
    assert_eq!(
        seq_counters.digit_decomposes,
        OFFSETS.len() as u64,
        "sequential path must decompose per rotation"
    );

    let sequential_us = time_batch(|| {
        for &o in &OFFSETS {
            std::hint::black_box(be.rotate(&ct, o).expect("rotate"));
        }
    });
    let hoisted_us = time_batch(|| {
        std::hint::black_box(be.rotate_batch(&ct, &OFFSETS).expect("rotate_batch"));
    });
    let speedup = sequential_us / hoisted_us;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let k = OFFSETS.len();

    println!("{k} rotations, toy backend, N={N}, L={LEVELS}, {REPS} reps, {cores} core(s)");
    println!(
        "  sequential: {sequential_us:10.1} us/batch ({} decompositions)",
        k
    );
    println!("  hoisted   : {hoisted_us:10.1} us/batch (1 decomposition)");
    println!("  speedup   : {speedup:.2}x");
    println!(
        "  allocs    : {} sequential vs {} hoisted",
        seq_counters.poly_allocs, hoist_counters.poly_allocs
    );

    let doc = json::obj(vec![
        ("schema", Json::Str("halo-bench-rotate/1".into())),
        ("n", num(N as f64)),
        ("levels", num(f64::from(LEVELS))),
        ("batch", num(k as f64)),
        ("reps", num(f64::from(REPS))),
        ("threads", num(cores as f64)),
        ("sequential_us", num(sequential_us)),
        ("hoisted_us", num(hoisted_us)),
        ("speedup", num(speedup)),
        ("sequential", counters_json(seq_counters)),
        ("hoisted", counters_json(hoist_counters)),
    ]);
    json::validate_rotate(&doc).expect("emitted document must satisfy its own schema");
    let dir = halo_bench::bench_json_dir().expect("bench json dir");
    let path = dir.join("BENCH_ROTATE.json");
    std::fs::write(&path, doc.pretty()).expect("write BENCH_ROTATE.json");
    println!("  wrote     : {}", path.display());

    let min: Option<f64> = match std::env::var("HALO_HOIST_MIN") {
        Ok(s) => s.parse().ok(),
        Err(_) if cores >= 4 => Some(1.5),
        Err(_) => {
            println!("  gate      : skipped ({cores} core(s) < 4 — timing too noisy to gate)");
            None
        }
    };
    if let Some(min) = min {
        if speedup < min {
            eprintln!("FAIL: speedup {speedup:.2}x below the {min:.1}x bar");
            std::process::exit(1);
        }
        println!("  gate      : PASS (>= {min:.1}x)");
    }
}
