//! Regenerates Figure 5 (PCA latency by (outer, inner) iterations).
use halo_bench::tables::{pca_grid, print_fig5};
fn main() {
    let scale = halo_bench::Scale::from_env();
    let points = pca_grid(scale, &[2, 4, 6, 8], &[2, 4, 6, 8]);
    print_fig5(&points);
}
