//! Fleet-fault campaign: shards the `linear` benchmark's loop job across
//! a simulated fleet of three crash-prone executors sharing one seeded
//! flaky `SimObjectStore`, one fault profile at a time — store faults in
//! isolation (timeouts, transients, torn uploads, bit-rot, outages, the
//! chaos mix), fleet faults in isolation (the mid-leg kill storm, the
//! scripted zombie drill), and the combined worst case (chaotic store
//! plus mixed fleet faults). Every surviving schedule must decrypt
//! bit-identically (exact backend) to a solo uninterrupted run of the
//! same program, and the campaign as a whole must provably exercise the
//! failure machinery: a fenced zombie write, a lease expiry with
//! reassignment, an executor crash, and a coordinator resume.
//!
//! ```sh
//! cargo run --release -p halo-bench --bin fleet_chaos
//! HALO_FLEET_SEED=3 cargo run --release -p halo-bench --bin fleet_chaos
//! ```
//!
//! Emits `results/FLEET_REPORT.json` (schema `halo-fleet-report/1`,
//! validated by `bench_json_check --fleet`) and exits non-zero on any
//! divergence or abort.

use std::time::Instant;

use halo_bench::json::{self, num, obj, Json};
use halo_bench::Scale;
use halo_ckks::SimBackend;
use halo_core::{compile, CompilerConfig};
use halo_ir::Function;
use halo_ml::bench::{BenchSpec, Linear, MlBenchmark};
use halo_runtime::fleet::baseline_policy;
use halo_runtime::{
    run_fleet, Executor, FleetConfig, FleetFaultSpec, FleetJob, FleetReport, Inputs,
    RemoteFaultSpec, SimObjectStore,
};

/// Source-loop iterations the job runs. HALO splits the dynamic loop at
/// the bootstrap interval, so the compiled program carries a chunk loop
/// plus a remainder loop; the fleet's leg schedule straddles both.
const ITERS: u64 = 20;

/// The fault profiles: store faults alone, fleet faults alone, and the
/// combined worst case. `zombie_drill` deterministically produces a
/// fenced zombie write, a lease expiry, a leg reassignment, and a
/// coordinator resume on every seed; `kill_storm` supplies the executor
/// crashes.
fn profiles() -> Vec<(&'static str, RemoteFaultSpec, FleetFaultSpec)> {
    vec![
        ("healthy", RemoteFaultSpec::none(), FleetFaultSpec::none()),
        (
            "store_timeouts",
            RemoteFaultSpec::timeouts(),
            FleetFaultSpec::none(),
        ),
        (
            "store_transients",
            RemoteFaultSpec::transients(),
            FleetFaultSpec::none(),
        ),
        (
            "store_torn_uploads",
            RemoteFaultSpec::torn_uploads(),
            FleetFaultSpec::none(),
        ),
        (
            "store_bit_rot",
            RemoteFaultSpec::bit_rot(),
            FleetFaultSpec::none(),
        ),
        (
            "store_outages",
            RemoteFaultSpec::outages(),
            FleetFaultSpec::none(),
        ),
        (
            "store_chaos",
            RemoteFaultSpec::chaos(),
            FleetFaultSpec::none(),
        ),
        (
            "kill_storm",
            RemoteFaultSpec::none(),
            FleetFaultSpec::kill_storm(),
        ),
        (
            "mixed_chaos",
            RemoteFaultSpec::chaos(),
            FleetFaultSpec::mixed(),
        ),
        (
            "zombie_drill",
            RemoteFaultSpec::none(),
            FleetFaultSpec::zombie_drill(),
        ),
    ]
}

/// The benchmark program and its inputs for one dataset seed — *without*
/// the trip bindings: the fleet binds every trip symbol to [`ITERS`]
/// itself, so every slice runs the identical program the baseline runs.
fn workload(seed: u64) -> (Function, Inputs) {
    let spec = BenchSpec {
        seed: 0xF1EE ^ seed,
        ..Scale::Small.spec()
    };
    let src = Linear.trace_dynamic(&spec);
    let compiled = compile(
        &src,
        CompilerConfig::Halo,
        &halo_bench::options(Scale::Small),
    )
    .expect("linear benchmark compiles");
    (compiled.function, Linear.inputs(&spec))
}

fn backend() -> SimBackend {
    SimBackend::exact(Scale::Small.params())
}

fn bits(outputs: &[Vec<f64>]) -> Vec<Vec<u64>> {
    outputs
        .iter()
        .map(|v| v.iter().map(|x| x.to_bits()).collect())
        .collect()
}

/// Fleet topology of the campaign: three executors, two global loop
/// headers per leg, and a slice quantum wide enough that any executor
/// can cross a leg boundary of the `linear` workload in one tick.
fn config() -> FleetConfig {
    FleetConfig {
        slice_ops: 4096,
        ..FleetConfig::default()
    }
}

struct Trial {
    profile: &'static str,
    seed: u64,
    legs: u32,
    ticks: u64,
    legs_claimed: u64,
    leases_expired: u64,
    zombie_writes_fenced: u64,
    legs_reassigned: u64,
    coordinator_resumes: u64,
    executor_crashes: u64,
    executor_stalls: u64,
    snapshot_writes: u64,
    remote_puts: u64,
    store_faults: u64,
    bit_identical: bool,
    aborted: bool,
}

impl Trial {
    fn from_report(
        profile: &'static str,
        seed: u64,
        report: &FleetReport,
        store_faults: u64,
        bit_identical: bool,
    ) -> Trial {
        Trial {
            profile,
            seed,
            legs: report.legs,
            ticks: report.ticks,
            legs_claimed: report.stats.legs_claimed,
            leases_expired: report.stats.leases_expired,
            zombie_writes_fenced: report.stats.zombie_writes_fenced,
            legs_reassigned: report.stats.legs_reassigned,
            coordinator_resumes: report.stats.coordinator_resumes,
            executor_crashes: report.executor_crashes,
            executor_stalls: report.executor_stalls,
            snapshot_writes: report.stats.snapshot_writes,
            remote_puts: report.stats.remote_puts,
            store_faults,
            bit_identical,
            aborted: false,
        }
    }

    fn aborted(profile: &'static str, seed: u64) -> Trial {
        Trial {
            profile,
            seed,
            legs: 0,
            ticks: 0,
            legs_claimed: 0,
            leases_expired: 0,
            zombie_writes_fenced: 0,
            legs_reassigned: 0,
            coordinator_resumes: 0,
            executor_crashes: 0,
            executor_stalls: 0,
            snapshot_writes: 0,
            remote_puts: 0,
            store_faults: 0,
            bit_identical: false,
            aborted: true,
        }
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("profile", Json::Str(self.profile.into())),
            ("seed", num(self.seed as f64)),
            ("legs", num(f64::from(self.legs))),
            ("ticks", num(self.ticks as f64)),
            ("legs_claimed", num(self.legs_claimed as f64)),
            ("leases_expired", num(self.leases_expired as f64)),
            (
                "zombie_writes_fenced",
                num(self.zombie_writes_fenced as f64),
            ),
            ("legs_reassigned", num(self.legs_reassigned as f64)),
            ("coordinator_resumes", num(self.coordinator_resumes as f64)),
            ("executor_crashes", num(self.executor_crashes as f64)),
            ("executor_stalls", num(self.executor_stalls as f64)),
            ("snapshot_writes", num(self.snapshot_writes as f64)),
            ("remote_puts", num(self.remote_puts as f64)),
            ("store_faults", num(self.store_faults as f64)),
            ("bit_identical", Json::Bool(self.bit_identical)),
        ])
    }
}

fn main() {
    let start = Instant::now();
    // One seed from the CI matrix, or a two-seed sweep locally.
    let seeds: Vec<u64> = match std::env::var("HALO_FLEET_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(s) => vec![s],
        None => vec![1, 2],
    };
    let cfg = config();

    let mut trials = Vec::new();
    for &seed in &seeds {
        // Solo uninterrupted baseline on the exact backend, under the
        // fleet's own per-slice policy: zero noise, so bit-identity is
        // the only acceptable outcome for every surviving schedule.
        let (f, inputs) = workload(seed);
        let mut solo_inputs = inputs.clone();
        for sym in Linear.trip_symbols() {
            solo_inputs = solo_inputs.env(sym, ITERS);
        }
        let be = backend();
        let baseline = bits(
            &Executor::with_policy(&be, baseline_policy())
                .run(&f, &solo_inputs)
                .expect("baseline run")
                .outputs,
        );

        for (idx, (profile, store_spec, fleet_spec)) in profiles().into_iter().enumerate() {
            let store = SimObjectStore::new(store_spec, 0xF1EE7 ^ seed ^ ((idx as u64) << 8));
            let job = FleetJob {
                function: &f,
                inputs: &inputs,
                trip_symbols: &["iters"],
                iters: ITERS,
            };
            let trial = match run_fleet(&job, &store, &cfg, &fleet_spec, seed, backend) {
                Ok(report) => Trial::from_report(
                    profile,
                    seed,
                    &report,
                    store.report().total(),
                    bits(&report.outputs) == baseline,
                ),
                Err(e) => {
                    eprintln!("ABORT {profile} seed={seed}: {e}");
                    Trial::aborted(profile, seed)
                }
            };
            trials.push(trial);
        }
    }

    for t in &trials {
        println!(
            "{} {:<18} seed={}: legs={} ticks={} claimed={} expired={} fenced={} \
             reassigned={} resumes={} crashes={} stalls={} snaps={} store_faults={}",
            if t.bit_identical { "OK  " } else { "FAIL" },
            t.profile,
            t.seed,
            t.legs,
            t.ticks,
            t.legs_claimed,
            t.leases_expired,
            t.zombie_writes_fenced,
            t.legs_reassigned,
            t.coordinator_resumes,
            t.executor_crashes,
            t.executor_stalls,
            t.snapshot_writes,
            t.store_faults,
        );
    }

    let passed = trials.iter().filter(|t| t.bit_identical).count();
    let failed = trials.len() - passed;
    let aborts = trials.iter().filter(|t| t.aborted).count();
    let doc = obj(vec![
        ("schema", Json::Str("halo-fleet-report/1".into())),
        ("bench", Json::Str(Linear.name().into())),
        ("scale", Json::Str("small".into())),
        ("iters", num(ITERS as f64)),
        ("seeds", num(seeds.len() as f64)),
        ("profiles", num(profiles().len() as f64)),
        ("executors", num(f64::from(cfg.executors))),
        ("leg_len", num(cfg.leg_len as f64)),
        ("wall_ms", num(start.elapsed().as_secs_f64() * 1e3)),
        ("passed", num(passed as f64)),
        ("failed", num(failed as f64)),
        ("aborts", num(aborts as f64)),
        (
            "trials",
            Json::Arr(trials.iter().map(Trial::to_json).collect()),
        ),
    ]);

    let dir = halo_bench::bench_json_dir().expect("bench json dir");
    let out = dir.join("FLEET_REPORT.json");
    std::fs::write(&out, doc.pretty()).expect("write report");
    println!(
        "wrote {} ({} trials, {passed} passed, {failed} failed, {aborts} aborts)",
        out.display(),
        trials.len(),
    );
    if failed > 0 {
        std::process::exit(1);
    }
    json::validate_fleet_report(&doc).expect("self-check: emitted report must satisfy its schema");
}
