//! # halo-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7).
//! Each `table*`/`fig*` binary prints the same rows/series the paper
//! reports; `run_all` emits everything at once (and is what
//! `EXPERIMENTS.md` is generated from).
//!
//! Scale is selected with the `HALO_SCALE` environment variable:
//! `small` (64 slots — CI-fast), `medium` (8 192 slots, default), or
//! `paper` (131 072-degree ring, 65 536 slots, 4 096 samples — the paper's
//! Table 1 configuration; minutes of runtime).
//!
//! Latencies are *modeled* microseconds from the calibrated cost model
//! (`DESIGN.md` §4, substitution 1): the compiled op stream is real, the
//! stopwatch is the paper's published per-op numbers.

use halo_ckks::{CkksParams, FaultInjectingBackend, FaultReport, FaultSpec, SimBackend};
use halo_core::{compile, CompileError, CompileOptions, CompileResult, CompilerConfig};
use halo_ir::Function;
use halo_ml::bench::{BenchSpec, MlBenchmark};
use halo_runtime::{reference_run, rmse, ExecError, ExecPolicy, Executor, Inputs, RunStats};

pub mod json;
pub mod tables;

/// Resolves the directory for machine-readable bench artifacts
/// (`HALO_BENCH_JSON_DIR`, default `results/`), creating it if needed.
///
/// # Errors
///
/// Propagates the create/canonicalize I/O error.
pub fn bench_json_dir() -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("HALO_BENCH_JSON_DIR").unwrap_or_else(|_| "results".into());
    let path = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&path)?;
    Ok(path)
}

/// Evaluation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 64 slots, 4 samples — smoke-test speed.
    Small,
    /// 8 192 slots, 512 samples — seconds per table.
    Medium,
    /// The paper's Table 1 scale: 65 536 slots, 4 096 samples.
    Paper,
}

impl Scale {
    /// Reads `HALO_SCALE` (default: medium).
    #[must_use]
    pub fn from_env() -> Scale {
        match std::env::var("HALO_SCALE").unwrap_or_default().as_str() {
            "small" => Scale::Small,
            "paper" => Scale::Paper,
            _ => Scale::Medium,
        }
    }

    /// The benchmark sizing for this scale.
    #[must_use]
    pub fn spec(self) -> BenchSpec {
        match self {
            Scale::Small => BenchSpec::test_small(),
            Scale::Medium => BenchSpec {
                slots: 1 << 13,
                num_elems: 1 << 9,
                seed: 0xDA7A,
            },
            Scale::Paper => BenchSpec::paper(),
        }
    }

    /// The scheme parameters (level structure is the paper's at every
    /// scale; only the ring degree shrinks).
    #[must_use]
    pub fn params(self) -> CkksParams {
        CkksParams {
            poly_degree: self.spec().slots * 2,
            ..CkksParams::paper()
        }
    }
}

/// Compiler options for a scale.
#[must_use]
pub fn options(scale: Scale) -> CompileOptions {
    CompileOptions::new(scale.params())
}

/// Compiles `bench` under `config`. DaCapo gets constant trip counts
/// (it rejects symbolic ones); every other configuration compiles the
/// dynamic-trip program.
///
/// # Errors
///
/// Propagates [`CompileError`] from the pipeline.
pub fn compile_bench(
    bench: &dyn MlBenchmark,
    config: CompilerConfig,
    iters: &[u64],
    scale: Scale,
) -> Result<CompileResult, CompileError> {
    let spec = scale.spec();
    let src = if config == CompilerConfig::DaCapo {
        bench.trace_constant(&spec, iters)
    } else {
        bench.trace_dynamic(&spec)
    };
    compile(&src, config, &options(scale))
}

/// Inputs for `bench` with every trip symbol bound to the matching entry
/// of `iters`.
#[must_use]
pub fn bound_inputs(bench: &dyn MlBenchmark, iters: &[u64], scale: Scale) -> Inputs {
    let spec = scale.spec();
    let mut inputs = bench.inputs(&spec);
    for (sym, &n) in bench.trip_symbols().iter().zip(iters) {
        inputs = inputs.env(*sym, n);
    }
    inputs
}

/// One measured execution.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Execution statistics (bootstrap counts, modeled latency).
    pub stats: RunStats,
    /// Decrypted outputs.
    pub outputs: Vec<Vec<f64>>,
}

/// Executes a compiled function on the simulation backend (exact or
/// noise-calibrated).
///
/// # Panics
///
/// Panics if execution fails (a compiled program must run).
#[must_use]
pub fn execute(f: &Function, inputs: &Inputs, scale: Scale, noisy: bool) -> Measured {
    let be = if noisy {
        SimBackend::new(scale.params())
    } else {
        SimBackend::exact(scale.params())
    };
    let out = Executor::new(&be)
        .run(f, inputs)
        .expect("compiled program must execute");
    Measured {
        stats: out.stats,
        outputs: out.outputs,
    }
}

/// Executes a compiled function on the *exact* simulation backend wrapped
/// in a seeded [`FaultInjectingBackend`], under the given recovery
/// policy. Returns the measurement plus the injected-fault report so
/// callers can assert the schedule (the recovery-overhead table and the
/// chaos suite both do).
///
/// # Errors
///
/// Returns the executor's error when recovery could not absorb the
/// injected faults (e.g. retry budget exhausted outside any loop).
pub fn execute_chaos(
    f: &Function,
    inputs: &Inputs,
    scale: Scale,
    spec: FaultSpec,
    seed: u64,
    policy: ExecPolicy,
) -> Result<(Measured, FaultReport), ExecError> {
    let be = FaultInjectingBackend::new(SimBackend::exact(scale.params()), spec, seed);
    let out = Executor::with_policy(&be, policy).run(f, inputs)?;
    Ok((
        Measured {
            stats: out.stats,
            outputs: out.outputs,
        },
        be.report(),
    ))
}

/// Compile + execute in one step.
///
/// # Errors
///
/// Propagates compile errors (e.g. DaCapo on dynamic trips).
pub fn run_bench(
    bench: &dyn MlBenchmark,
    config: CompilerConfig,
    iters: &[u64],
    scale: Scale,
) -> Result<Measured, CompileError> {
    let compiled = compile_bench(bench, config, iters, scale)?;
    let inputs = bound_inputs(bench, iters, scale);
    Ok(execute(&compiled.function, &inputs, scale, false))
}

/// RMSE of a noisy encrypted run against the plaintext reference, per
/// output (Table 4's metric).
///
/// # Errors
///
/// Propagates compile errors.
///
/// # Panics
///
/// Panics if the reference execution fails.
pub fn rmse_per_output(
    bench: &dyn MlBenchmark,
    iters: &[u64],
    scale: Scale,
) -> Result<Vec<f64>, CompileError> {
    let spec = scale.spec();
    let src = bench.trace_dynamic(&spec);
    let inputs = bound_inputs(bench, iters, scale);
    let want = reference_run(&src, &inputs, spec.slots).expect("reference");
    let compiled = compile(&src, CompilerConfig::Halo, &options(scale))?;
    let got = execute(&compiled.function, &inputs, scale, true);
    Ok(got
        .outputs
        .iter()
        .zip(&want)
        .map(|(g, w)| {
            rmse(
                &g[..spec.num_elems.min(g.len())],
                &w[..spec.num_elems.min(w.len())],
            )
        })
        .collect())
}

/// Formats a microsecond latency as seconds with 3 decimals.
#[must_use]
pub fn fmt_seconds(us: f64) -> String {
    format!("{:.3}", us / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ml::bench::Linear;

    #[test]
    fn small_scale_round_trips() {
        let m = run_bench(&Linear, CompilerConfig::Halo, &[4], Scale::Small).unwrap();
        assert!(m.stats.bootstrap_count > 0);
        assert!(m.stats.total_us > 0.0);
    }

    #[test]
    fn scale_shapes() {
        assert_eq!(Scale::Small.spec().slots, 64);
        assert_eq!(Scale::Paper.spec(), BenchSpec::paper());
        assert_eq!(Scale::Paper.params().poly_degree, 1 << 17);
    }

    #[test]
    fn rmse_is_finite_and_positive_with_noise() {
        let e = rmse_per_output(&Linear, &[4], Scale::Small).unwrap();
        assert!(!e.is_empty());
        assert!(e.iter().all(|x| x.is_finite() && *x > 0.0));
    }
}
