//! Row computation and printing for every table and figure of §7.

use std::time::Instant;

use halo_ckks::{CostModel, CostedOp, FaultSpec};
use halo_core::autotune::heuristic_cost_us;
use halo_core::{autotune, CompilerConfig, ASSUMED_TRIPS};
use halo_ir::print::code_size_bytes;
use halo_ml::bench::{all_benchmarks, flat_benchmarks, Pca};
use halo_runtime::ExecPolicy;

use crate::{bound_inputs, compile_bench, execute_chaos, rmse_per_output, run_bench, Scale};

/// The paper's iteration count for the flat-loop tables.
pub const PAPER_ITERS: u64 = 40;

/// Table 1: the FHE parameters in use.
pub fn print_table1(scale: Scale) {
    let p = scale.params();
    println!("Table 1: FHE parameters ({scale:?} scale)");
    println!(
        "  N  (polynomial modulus degree) = 2^{}",
        p.poly_degree.trailing_zeros()
    );
    println!("  Q  (coefficient modulus)       = 2^{}", p.log2_q());
    println!("  Rf (rescaling factor)          = 2^{}", p.rf_bits);
    println!("  L  (max level after bootstrap) = {}", p.max_level);
    println!("  slots                          = {}", p.slots());
}

/// Table 2: op latency (µs) at levels 1/5/10/15.
pub fn print_table2() {
    let m = CostModel::new();
    println!("Table 2: FHE op latency (µs) by operand level");
    println!(
        "  {:<10} {:>8} {:>8} {:>8} {:>8}",
        "op", "l=1", "l=5", "l=10", "l=15"
    );
    type MkOp = fn(u32) -> CostedOp;
    let rows: [(&str, MkOp); 3] = [
        ("multcc", |l| CostedOp::MultCC { level: l }),
        ("rescale", |l| CostedOp::Rescale { level: l }),
        ("modswitch", |l| CostedOp::ModSwitch { level: l }),
    ];
    for (name, mk) in rows {
        print!("  {name:<10}");
        for l in [1u32, 5, 10, 15] {
            print!(" {:>8.0}", m.latency_us(mk(l)));
        }
        println!();
    }
}

/// Table 3: bootstrap latency (µs) by target level.
pub fn print_table3() {
    let m = CostModel::new();
    println!("Table 3: bootstrap latency (µs) by target level");
    print!("  target:  ");
    for t in [4u32, 7, 10, 13, 16] {
        print!(" {t:>8}");
    }
    println!();
    print!("  latency: ");
    for t in [4u32, 7, 10, 13, 16] {
        print!(" {:>8.0}", m.latency_us(CostedOp::Bootstrap { target: t }));
    }
    println!();
}

/// Table 4 rows: benchmark characteristics + measured RMSE band.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Loop nesting depth.
    pub loop_depth: usize,
    /// Carried variables per level.
    pub carried: Vec<usize>,
    /// Approximated functions.
    pub approx: &'static str,
    /// Largest per-output RMSE.
    pub max_rmse: f64,
    /// Smallest per-output RMSE.
    pub min_rmse: f64,
}

/// Computes Table 4 (encrypted-vs-plain RMSE under the HALO pipeline).
#[must_use]
pub fn table4(scale: Scale, iters: u64) -> Vec<Table4Row> {
    all_benchmarks()
        .iter()
        .map(|b| {
            let trips: Vec<u64> = b.trip_symbols().iter().map(|_| iters).collect();
            let errs = rmse_per_output(b.as_ref(), &trips, scale).expect("compiles");
            Table4Row {
                name: b.name(),
                loop_depth: b.loop_depth(),
                carried: b.carried_vars(),
                approx: b.approx_functions(),
                max_rmse: errs.iter().copied().fold(0.0, f64::max),
                min_rmse: errs.iter().copied().fold(f64::INFINITY, f64::min),
            }
        })
        .collect()
}

/// Prints Table 4.
pub fn print_table4(scale: Scale, iters: u64) {
    println!("Table 4: benchmark characteristics and RMSE ({iters} iterations)");
    println!(
        "  {:<13} {:>5} {:>12} {:>9} {:>11} {:>11}",
        "benchmark", "depth", "carried", "approx", "max RMSE", "min RMSE"
    );
    for r in table4(scale, iters) {
        let carried = r
            .carried
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "  {:<13} {:>5} {:>12} {:>9} {:>11.2e} {:>11.2e}",
            r.name, r.loop_depth, carried, r.approx, r.max_rmse, r.min_rmse
        );
    }
}

/// Table 5 / Figure 4 rows: per benchmark × configuration.
#[derive(Debug, Clone)]
pub struct ConfigRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Configuration.
    pub config: CompilerConfig,
    /// Executed bootstrap count (Table 5).
    pub bootstraps: u64,
    /// Modeled end-to-end latency, µs (Figure 4 bar height).
    pub total_us: f64,
    /// Modeled bootstrap latency, µs (Figure 4 hatched part).
    pub bootstrap_us: f64,
}

/// Runs the six flat benchmarks under the five configurations at `iters`
/// iterations (Table 5 + Figure 4 data).
#[must_use]
pub fn flat_config_rows(scale: Scale, iters: u64) -> Vec<ConfigRow> {
    let mut rows = Vec::new();
    for bench in flat_benchmarks() {
        for config in CompilerConfig::ALL {
            let m = run_bench(bench.as_ref(), config, &[iters], scale)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", bench.name(), config.name()));
            rows.push(ConfigRow {
                bench: bench.name(),
                config,
                bootstraps: m.stats.bootstrap_count,
                total_us: m.stats.total_us,
                bootstrap_us: m.stats.bootstrap_us,
            });
        }
    }
    rows
}

/// Prints Table 5 from precomputed rows.
pub fn print_table5(rows: &[ConfigRow], iters: u64) {
    println!("Table 5: bootstrapping count at {iters} iterations");
    print!("  {:<13}", "benchmark");
    for c in CompilerConfig::ALL {
        print!(" {:>18}", c.name());
    }
    println!();
    for bench in flat_benchmarks() {
        print!("  {:<13}", bench.name());
        for c in CompilerConfig::ALL {
            let r = rows
                .iter()
                .find(|r| r.bench == bench.name() && r.config == c)
                .expect("row exists");
            print!(" {:>18}", r.bootstraps);
        }
        println!();
    }
}

/// Prints Figure 4's series (latency + bootstrap fraction).
pub fn print_fig4(rows: &[ConfigRow], iters: u64) {
    println!("Figure 4: end-to-end modeled latency (s) at {iters} iterations");
    println!("  (hatched = bootstrap share, as in the paper's bars)");
    for bench in flat_benchmarks() {
        println!("  {}:", bench.name());
        for c in CompilerConfig::ALL {
            let r = rows
                .iter()
                .find(|r| r.bench == bench.name() && r.config == c)
                .expect("row exists");
            println!(
                "    {:<18} total {:>9.3} s   bootstrap {:>9.3} s ({:>4.1}%)",
                c.name(),
                r.total_us / 1e6,
                r.bootstrap_us / 1e6,
                100.0 * r.bootstrap_us / r.total_us.max(1e-12)
            );
        }
    }
    // Paper headline: HALO vs DaCapo geometric-mean speedup.
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for bench in flat_benchmarks() {
        let da = rows
            .iter()
            .find(|r| r.bench == bench.name() && r.config == CompilerConfig::DaCapo)
            .expect("row");
        let halo = rows
            .iter()
            .find(|r| r.bench == bench.name() && r.config == CompilerConfig::Halo)
            .expect("row");
        log_sum += (da.total_us / halo.total_us).ln();
        n += 1;
    }
    println!(
        "  geometric-mean HALO speedup over DaCapo: {:.2}x",
        (log_sum / n as f64).exp()
    );
}

/// Table 6/7 rows: DaCapo at sweeping iteration counts vs HALO once.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// DaCapo compile time (s) / code size (KB) per iteration count.
    pub dacapo: Vec<f64>,
    /// HALO's single figure.
    pub halo: f64,
}

/// The iteration counts swept by Tables 6 and 7.
pub const SWEEP: [u64; 4] = [10, 20, 30, 40];

/// Computes Table 6 (compile time, seconds).
#[must_use]
pub fn table6(scale: Scale) -> Vec<ScalingRow> {
    flat_benchmarks()
        .iter()
        .map(|b| {
            let dacapo: Vec<f64> = SWEEP
                .iter()
                .map(|&n| {
                    let t = Instant::now();
                    compile_bench(b.as_ref(), CompilerConfig::DaCapo, &[n], scale)
                        .expect("DaCapo compiles constant trips");
                    t.elapsed().as_secs_f64()
                })
                .collect();
            let t = Instant::now();
            compile_bench(b.as_ref(), CompilerConfig::Halo, &[PAPER_ITERS], scale)
                .expect("HALO compiles");
            let halo = t.elapsed().as_secs_f64();
            ScalingRow {
                bench: b.name(),
                dacapo,
                halo,
            }
        })
        .collect()
}

/// Computes Table 7 (code size, kilobytes).
#[must_use]
pub fn table7(scale: Scale) -> Vec<ScalingRow> {
    flat_benchmarks()
        .iter()
        .map(|b| {
            let dacapo: Vec<f64> = SWEEP
                .iter()
                .map(|&n| {
                    let r = compile_bench(b.as_ref(), CompilerConfig::DaCapo, &[n], scale)
                        .expect("DaCapo compiles");
                    code_size_bytes(&r.function) as f64 / 1024.0
                })
                .collect();
            let r = compile_bench(b.as_ref(), CompilerConfig::Halo, &[PAPER_ITERS], scale)
                .expect("HALO compiles");
            let halo = code_size_bytes(&r.function) as f64 / 1024.0;
            ScalingRow {
                bench: b.name(),
                dacapo,
                halo,
            }
        })
        .collect()
}

/// Prints a scaling table (Table 6 or 7) with the geometric-mean
/// improvement at the largest sweep point.
pub fn print_scaling(title: &str, unit: &str, rows: &[ScalingRow]) {
    println!("{title}");
    print!("  {:<13}", "benchmark");
    for n in SWEEP {
        print!(" {:>10}", format!("DaCapo@{n}"));
    }
    println!(" {:>10} {:>12}", "HALO", "improvement");
    let mut log_sum = 0.0;
    for r in rows {
        print!("  {:<13}", r.bench);
        for d in &r.dacapo {
            print!(" {d:>10.3}");
        }
        let imp = r.dacapo.last().expect("sweep non-empty") / r.halo.max(1e-12);
        println!(" {:>10.3} {:>11.2}x", r.halo, imp);
        log_sum += imp.ln();
    }
    println!(
        "  geometric mean improvement ({unit}, at {} iters): {:.2}x",
        SWEEP[SWEEP.len() - 1],
        (log_sum / rows.len() as f64).exp()
    );
}

/// Figure 5 / Table 8 data point for PCA.
#[derive(Debug, Clone)]
pub struct PcaPoint {
    /// Outer iteration count.
    pub outer: u64,
    /// Inner iteration count.
    pub inner: u64,
    /// Configuration.
    pub config: CompilerConfig,
    /// Executed bootstraps (Table 8).
    pub bootstraps: u64,
    /// Modeled latency, µs (Figure 5).
    pub total_us: f64,
}

/// The three compilers in the PCA case study.
pub const PCA_CONFIGS: [CompilerConfig; 3] = [
    CompilerConfig::DaCapo,
    CompilerConfig::TypeMatched,
    CompilerConfig::Halo,
];

/// Runs the PCA grid (Figure 5: outer × inner ∈ {2,4,6,8}²; Table 8 uses
/// the inner ∈ {2,8} columns).
#[must_use]
pub fn pca_grid(scale: Scale, outers: &[u64], inners: &[u64]) -> Vec<PcaPoint> {
    let mut points = Vec::new();
    for &outer in outers {
        for &inner in inners {
            for config in PCA_CONFIGS {
                let m = run_bench(&Pca, config, &[outer, inner], scale)
                    .unwrap_or_else(|e| panic!("PCA {config:?} ({outer},{inner}): {e}"));
                points.push(PcaPoint {
                    outer,
                    inner,
                    config,
                    bootstraps: m.stats.bootstrap_count,
                    total_us: m.stats.total_us,
                });
            }
        }
    }
    points
}

/// Prints Figure 5's series.
pub fn print_fig5(points: &[PcaPoint]) {
    println!("Figure 5: PCA modeled latency (s) by (outer, inner) iterations");
    print!("  {:<18}", "(outer, inner)");
    for c in PCA_CONFIGS {
        print!(" {:>14}", c.name());
    }
    println!();
    let mut keys: Vec<(u64, u64)> = points.iter().map(|p| (p.outer, p.inner)).collect();
    keys.sort_unstable();
    keys.dedup();
    for (o, i) in keys {
        print!("  {:<18}", format!("({o}, {i})"));
        for c in PCA_CONFIGS {
            let p = points
                .iter()
                .find(|p| p.outer == o && p.inner == i && p.config == c)
                .expect("point");
            print!(" {:>14.3}", p.total_us / 1e6);
        }
        println!();
    }
}

/// Prints Table 8 (bootstrap counts on the inner ∈ {2,8} columns).
pub fn print_table8(points: &[PcaPoint]) {
    println!("Table 8: PCA bootstrapping count");
    print!("  {:<18}", "(outer, inner)");
    for c in PCA_CONFIGS {
        print!(" {:>14}", c.name());
    }
    println!();
    let mut keys: Vec<(u64, u64)> = points.iter().map(|p| (p.outer, p.inner)).collect();
    keys.sort_unstable();
    keys.dedup();
    for (o, i) in keys {
        print!("  {:<18}", format!("({o}, {i})"));
        for c in PCA_CONFIGS {
            let p = points
                .iter()
                .find(|p| p.outer == o && p.inner == i && p.config == c)
                .expect("point");
            print!(" {:>14}", p.bootstraps);
        }
        println!();
    }
}

/// Recovery-overhead table row: one flat benchmark executed fault-free
/// vs under seeded transient faults with the resilient policy.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Injected per-call transient fault rate.
    pub fault_rate: f64,
    /// Transient faults observed by the executor.
    pub transients: u64,
    /// Backend calls re-issued.
    pub retries: u64,
    /// Emergency bootstraps (degradation events).
    pub emergency_bootstraps: u64,
    /// Loop-header checkpoints taken.
    pub checkpoints: u64,
    /// Resumes from a checkpoint.
    pub resumes: u64,
    /// Fault-free modeled latency, µs.
    pub base_us: f64,
    /// Modeled latency under faults (includes backoff + checkpoint time).
    pub faulty_us: f64,
    /// Whether the recovered outputs matched the fault-free run exactly.
    pub outputs_exact: bool,
}

/// The transient rate used by the recovery-overhead table (the chaos
/// suite's acceptance rate: every benchmark must complete under it).
pub const RECOVERY_FAULT_RATE: f64 = 0.05;

/// Runs the six flat benchmarks fault-free and under seeded transient
/// faults with [`ExecPolicy::resilient`], producing recovery-overhead
/// rows. With the exact backend and transient-only faults the recovered
/// outputs must be *bit-identical* to the fault-free run — retried calls
/// recompute the same values.
///
/// # Panics
///
/// Panics if a benchmark fails to compile or recovery fails to complete
/// a run (both violate the fault-tolerance acceptance criteria).
#[must_use]
pub fn recovery_rows(scale: Scale, iters: u64, seed: u64) -> Vec<RecoveryRow> {
    let mut rows = Vec::new();
    for bench in flat_benchmarks() {
        let compiled = compile_bench(bench.as_ref(), CompilerConfig::Halo, &[iters], scale)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        let inputs = bound_inputs(bench.as_ref(), &[iters], scale);
        let base = crate::execute(&compiled.function, &inputs, scale, false);
        let (faulty, _report) = execute_chaos(
            &compiled.function,
            &inputs,
            scale,
            FaultSpec::transient_only(RECOVERY_FAULT_RATE),
            seed,
            ExecPolicy::resilient(),
        )
        .unwrap_or_else(|e| panic!("{}: recovery must complete: {e}", bench.name()));
        let outputs_exact = base.outputs == faulty.outputs;
        rows.push(RecoveryRow {
            bench: bench.name(),
            fault_rate: RECOVERY_FAULT_RATE,
            transients: faulty.stats.transient_faults,
            retries: faulty.stats.retries,
            emergency_bootstraps: faulty.stats.emergency_bootstraps,
            checkpoints: faulty.stats.checkpoints,
            resumes: faulty.stats.resumes,
            base_us: base.stats.total_us,
            faulty_us: faulty.stats.total_us,
            outputs_exact,
        });
    }
    rows
}

/// Prints the recovery-overhead table.
pub fn print_recovery(rows: &[RecoveryRow], seed: u64) {
    let rate = rows.first().map_or(RECOVERY_FAULT_RATE, |r| r.fault_rate);
    println!(
        "Recovery overhead: resilient executor under {:.0}% transient faults (seed {seed})",
        rate * 100.0
    );
    println!(
        "  {:<13} {:>7} {:>8} {:>7} {:>7} {:>7} {:>10} {:>10} {:>9} {:>6}",
        "benchmark",
        "faults",
        "retries",
        "eboots",
        "ckpts",
        "resumes",
        "base (s)",
        "chaos (s)",
        "overhead",
        "exact"
    );
    for r in rows {
        let overhead = 100.0 * (r.faulty_us - r.base_us) / r.base_us.max(1e-12);
        println!(
            "  {:<13} {:>7} {:>8} {:>7} {:>7} {:>7} {:>10.3} {:>10.3} {:>8.2}% {:>6}",
            r.bench,
            r.transients,
            r.retries,
            r.emergency_bootstraps,
            r.checkpoints,
            r.resumes,
            r.base_us / 1e6,
            r.faulty_us / 1e6,
            overhead,
            if r.outputs_exact { "yes" } else { "NO" }
        );
    }
}

// ----------------------------------------------------------------------
// Serving: cross-request SIMD batching throughput
// ----------------------------------------------------------------------

/// Batch sizes the serving campaign sweeps.
pub const SERVING_BATCHES: [usize; 4] = [1, 4, 16, 64];
/// Jobs per campaign (a multiple of every batch size, so every run
/// coalesces into full batches and rows are deterministic).
pub const SERVING_JOBS: usize = 128;
/// Concurrent tenant sessions submitting the jobs.
pub const SERVING_SESSIONS: usize = 4;
/// Worker threads (the modeled makespan divides total work by this).
pub const SERVING_WORKERS: usize = 4;
/// Loop trips of the serving workload (bootstraps per job).
pub const SERVING_ITERS: u64 = 6;

/// One row of the serving-throughput table: the same 128-job
/// same-program campaign at one maximum batch size.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Maximum coalesced batch size for this run.
    pub batch: usize,
    /// Jobs completed (always [`SERVING_JOBS`]).
    pub jobs: u64,
    /// Executions that coalesced ≥ 2 jobs.
    pub packed_batches: u64,
    /// Modeled throughput, completed jobs per modeled second.
    pub jobs_per_sec: f64,
    /// Modeled latency percentiles across jobs, µs.
    pub p50_us: f64,
    /// 99th percentile modeled latency, µs.
    pub p99_us: f64,
    /// Modeled campaign makespan, µs.
    pub makespan_us: f64,
    /// Throughput relative to the batch-1 (solo) run of the same jobs.
    pub speedup_vs_solo: f64,
}

impl ServingRow {
    /// The row's JSON form, shared by `BENCH_SERVE.json` and the
    /// `serving` section of `BENCH_RUN_ALL.json`.
    #[must_use]
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::{num, obj};
        obj(vec![
            ("batch", num(self.batch as f64)),
            ("jobs", num(self.jobs as f64)),
            ("packed_batches", num(self.packed_batches as f64)),
            ("jobs_per_sec", num(self.jobs_per_sec)),
            ("p50_us", num(self.p50_us)),
            ("p99_us", num(self.p99_us)),
            ("makespan_us", num(self.makespan_us)),
            ("speedup_vs_solo", num(self.speedup_vs_solo)),
        ])
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The serving workload: a compiled squaring iteration (`w ← w²`,
/// [`SERVING_ITERS`] trips) — slotwise after type-matched compilation
/// (no rotations, no masks), so jobs coalesce into slot windows.
fn serving_program(scale: Scale) -> halo_ir::Function {
    use halo_core::compile;
    use halo_ir::{FunctionBuilder, TripCount};
    let slots = scale.spec().slots;
    let mut b = FunctionBuilder::new("square_iter", slots);
    let x = b.input_cipher("x");
    let width = serving_width(scale);
    let r = b.for_loop(TripCount::dynamic("n"), &[x], width, |b, a| {
        vec![b.mul(a[0], a[0])]
    });
    b.ret(&r);
    let src = b.finish();
    compile(&src, CompilerConfig::TypeMatched, &crate::options(scale))
        .expect("serving workload compiles")
        .function
}

/// Per-job payload width: the slot-window size that fits the largest
/// swept batch ([`SERVING_BATCHES`]) into one ciphertext at any scale.
#[must_use]
pub fn serving_width(scale: Scale) -> usize {
    (scale.spec().slots / SERVING_BATCHES[SERVING_BATCHES.len() - 1]).max(1)
}

/// Runs the closed-loop serving campaign: [`SERVING_JOBS`] same-program
/// jobs from [`SERVING_SESSIONS`] tenants over [`SERVING_WORKERS`]
/// workers on the exact backend, once per batch size in
/// [`SERVING_BATCHES`]. Throughput and makespan are modeled (cost-model
/// accounted), so rows are machine-independent; `seed` varies the job
/// payloads only.
///
/// # Panics
///
/// Panics if the workload fails to compile or any job fails — the exact
/// backend is fault-free, so failure is a serving-layer bug.
#[must_use]
pub fn serving_rows(scale: Scale, seed: u64) -> Vec<ServingRow> {
    use halo_runtime::serve::{serve, ServeConfig};
    use halo_runtime::Inputs;
    use std::sync::Arc;

    let prog = Arc::new(serving_program(scale));
    let be = halo_ckks::SimBackend::exact(scale.params());
    let width = serving_width(scale);
    let mut rng = seed;
    let jobs: Vec<Vec<f64>> = (0..SERVING_JOBS)
        .map(|_| {
            (0..width)
                .map(|_| (splitmix(&mut rng) as f64 / u64::MAX as f64) * 1.8 - 0.9)
                .collect()
        })
        .collect();

    let mut rows: Vec<ServingRow> = Vec::new();
    let mut solo_makespan = f64::NAN;
    for &batch in &SERVING_BATCHES {
        let config = ServeConfig {
            workers: SERVING_WORKERS,
            queue_cap: SERVING_JOBS.max(1),
            max_batch: batch,
            // Linger so every execution coalesces a full batch: the rows
            // become deterministic functions of the cost model.
            batch_window_ms: if batch > 1 { 500 } else { 0 },
            ..ServeConfig::default()
        };
        let ((), report) = serve(&be, config, |srv| {
            let sessions: Vec<_> = (0..SERVING_SESSIONS)
                .map(|i| srv.session(&format!("tenant-{i}")))
                .collect();
            let tickets: Vec<_> = jobs
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    srv.submit(
                        sessions[i % SERVING_SESSIONS],
                        &prog,
                        Inputs::new().cipher("x", d.clone()).env("n", SERVING_ITERS),
                    )
                    .expect("admit")
                })
                .collect();
            for t in tickets {
                t.wait().expect("serving job must complete");
            }
        });
        assert_eq!(report.jobs_done, SERVING_JOBS as u64, "batch {batch}");
        if batch == 1 {
            solo_makespan = report.makespan_us;
        }
        rows.push(ServingRow {
            batch,
            jobs: report.jobs_done,
            packed_batches: report.packed_batches,
            jobs_per_sec: report.jobs_per_sec(),
            p50_us: report.latency_percentile_us(50.0),
            p99_us: report.latency_percentile_us(99.0),
            makespan_us: report.makespan_us,
            speedup_vs_solo: solo_makespan / report.makespan_us,
        });
    }
    rows
}

/// Prints the serving-throughput table (batched vs solo).
pub fn print_serving(rows: &[ServingRow], seed: u64) {
    println!(
        "Serving throughput: {SERVING_JOBS} same-program jobs, \
         {SERVING_SESSIONS} sessions, {SERVING_WORKERS} workers (seed {seed})"
    );
    println!(
        "  {:>5} {:>12} {:>12} {:>12} {:>14} {:>9}",
        "batch", "jobs/sec", "p50 (ms)", "p99 (ms)", "makespan (s)", "speedup"
    );
    for r in rows {
        println!(
            "  {:>5} {:>12.2} {:>12.2} {:>12.2} {:>14.3} {:>8.2}x",
            r.batch,
            r.jobs_per_sec,
            r.p50_us / 1e3,
            r.p99_us / 1e3,
            r.makespan_us / 1e6,
            r.speedup_vs_solo
        );
    }
}

// ----------------------------------------------------------------------
// Autotuning: HALO heuristic vs. optimal-placement search
// ----------------------------------------------------------------------

/// One row of the "HALO heuristic vs. tuned" comparison: a program's
/// modeled cost under the paper's HALO configuration against the
/// autotuner's best plan, plus the search accounting.
#[derive(Debug, Clone)]
pub struct TuneRow {
    /// Program name (benchmark name, or `fuzz-<seed>` for corpus rows).
    pub program: String,
    /// [`halo_core::TunePlan::describe`] of the winning plan.
    pub plan: String,
    /// Modeled cost (µs) under [`CompilerConfig::Halo`].
    pub halo_us: f64,
    /// Modeled cost (µs) of the autotuned plan.
    pub tuned_us: f64,
    /// Candidates the search compiled and scored.
    pub evaluated: usize,
    /// Candidates discarded without a full compile.
    pub pruned: usize,
    /// Total candidate-space size.
    pub space: usize,
}

impl TuneRow {
    /// Heuristic-over-tuned cost ratio (≥ 1 when the search did its job).
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.halo_us / self.tuned_us
    }

    /// The row's JSON form, shared by `BENCH_TUNE.json` and the `tuning`
    /// section of `BENCH_RUN_ALL.json`.
    #[must_use]
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::{num, obj, Json};
        obj(vec![
            ("program", Json::Str(self.program.clone())),
            ("plan", Json::Str(self.plan.clone())),
            ("halo_us", num(self.halo_us)),
            ("tuned_us", num(self.tuned_us)),
            ("gap", num(self.gap())),
            ("evaluated", num(self.evaluated as f64)),
            ("pruned", num(self.pruned as f64)),
            ("space", num(self.space as f64)),
        ])
    }
}

/// Builds one [`TuneRow`] for a traced program: the HALO heuristic's
/// modeled cost vs the autotuner's winner.
///
/// # Panics
///
/// Panics if the HALO heuristic or the whole search fails to compile the
/// program — both mean the corpus/benchmark is broken.
#[must_use]
pub fn tune_row(
    program: &str,
    src: &halo_ir::Function,
    opts: &halo_core::CompileOptions,
) -> TuneRow {
    let halo_us = heuristic_cost_us(src, CompilerConfig::Halo, opts, ASSUMED_TRIPS)
        .unwrap_or_else(|e| panic!("{program}: HALO heuristic: {e}"));
    let outcome =
        autotune::autotune(src, opts).unwrap_or_else(|e| panic!("{program}: autotune: {e}"));
    TuneRow {
        program: program.into(),
        plan: outcome.plan.describe(),
        halo_us,
        tuned_us: outcome.cost_us,
        evaluated: outcome.evaluated,
        pruned: outcome.pruned,
        space: outcome.space,
    }
}

/// Autotunes the six flat benchmarks (dynamic-trip traces) and compares
/// each against the HALO heuristic's modeled cost.
#[must_use]
pub fn tuned_rows(scale: Scale) -> Vec<TuneRow> {
    let spec = scale.spec();
    let opts = crate::options(scale);
    flat_benchmarks()
        .iter()
        .map(|b| tune_row(b.name(), &b.trace_dynamic(&spec), &opts))
        .collect()
}

/// Number of rows where the tuned plan strictly beats the heuristic.
#[must_use]
pub fn tune_improved(rows: &[TuneRow]) -> usize {
    rows.iter()
        .filter(|r| r.tuned_us < r.halo_us * (1.0 - 1e-9))
        .count()
}

/// Geometric-mean heuristic-over-tuned gap across rows.
#[must_use]
pub fn tune_geomean_gap(rows: &[TuneRow]) -> f64 {
    let log_sum: f64 = rows.iter().map(|r| r.gap().ln()).sum();
    (log_sum / rows.len().max(1) as f64).exp()
}

/// Prints the "HALO heuristic vs. tuned" table.
pub fn print_tuned(rows: &[TuneRow]) {
    println!(
        "Autotuning: HALO heuristic vs. optimal-placement search (modeled, {ASSUMED_TRIPS} iters)"
    );
    println!(
        "  {:<13} {:>12} {:>12} {:>7} {:>11} {:>7} {:<34}",
        "program", "HALO (s)", "tuned (s)", "gap", "evaluated", "pruned", "plan"
    );
    for r in rows {
        println!(
            "  {:<13} {:>12.3} {:>12.3} {:>6.2}x {:>11} {:>7} {:<34}",
            r.program,
            r.halo_us / 1e6,
            r.tuned_us / 1e6,
            r.gap(),
            r.evaluated,
            r.pruned,
            r.plan
        );
    }
    println!(
        "  geometric-mean heuristic-vs-optimal gap: {:.3}x ({} of {} strictly improved)",
        tune_geomean_gap(rows),
        tune_improved(rows),
        rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_rows_cover_the_grid() {
        let rows = flat_config_rows(Scale::Small, 4);
        assert_eq!(rows.len(), 6 * 5);
        // HALO never executes more bootstraps than Type-matched.
        for bench in flat_benchmarks() {
            let tm = rows
                .iter()
                .find(|r| r.bench == bench.name() && r.config == CompilerConfig::TypeMatched)
                .unwrap();
            let halo = rows
                .iter()
                .find(|r| r.bench == bench.name() && r.config == CompilerConfig::Halo)
                .unwrap();
            assert!(
                halo.bootstraps <= tm.bootstraps,
                "{}: {} > {}",
                bench.name(),
                halo.bootstraps,
                tm.bootstraps
            );
            assert!(halo.total_us <= tm.total_us * 1.02, "{}", bench.name());
        }
    }

    #[test]
    fn pca_grid_latency_scales_with_iterations_for_halo() {
        let points = pca_grid(Scale::Small, &[2, 4], &[2]);
        let at = |o: u64, c: CompilerConfig| {
            points
                .iter()
                .find(|p| p.outer == o && p.inner == 2 && p.config == c)
                .unwrap()
                .total_us
        };
        // Type-matched and HALO are iteration-proportional (§7.4).
        let ratio = at(4, CompilerConfig::Halo) / at(2, CompilerConfig::Halo);
        assert!((1.5..=2.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn recovery_rows_complete_with_exact_outputs() {
        let rows = recovery_rows(Scale::Small, 4, 7);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            // Exact backend + transient-only faults: recovery recomputes
            // identical values, so outputs must match bit-for-bit.
            assert!(r.outputs_exact, "{}", r.bench);
            // Recovery never makes the modeled run cheaper.
            assert!(r.faulty_us >= r.base_us, "{}", r.bench);
            // The resilient policy checkpoints every loop header.
            assert!(r.checkpoints > 0, "{}", r.bench);
        }
        // 5% across six benchmarks: some faults must fire and be retried.
        let faults: u64 = rows.iter().map(|r| r.transients).sum();
        let retries: u64 = rows.iter().map(|r| r.retries).sum();
        assert!(faults > 0, "5% rate must fire across six benchmarks");
        assert!(retries >= faults.min(1));
    }

    #[test]
    fn serving_rows_model_near_linear_batching_speedup() {
        let rows = serving_rows(Scale::Small, 7);
        assert_eq!(rows.len(), SERVING_BATCHES.len());
        for (r, &batch) in rows.iter().zip(&SERVING_BATCHES) {
            assert_eq!(r.batch, batch);
            assert_eq!(r.jobs, SERVING_JOBS as u64);
            assert!(r.p50_us <= r.p99_us, "batch {batch}");
            assert!(r.jobs_per_sec > 0.0, "batch {batch}");
            if batch > 1 {
                assert!(r.packed_batches >= 1, "batch {batch} never coalesced");
            }
        }
        // Solo baseline defines speedup 1; batch 16 must clear the
        // paper-level 10x modeled bar with margin (pack overhead is
        // negligible against bootstrap-heavy execution).
        assert!((rows[0].speedup_vs_solo - 1.0).abs() < 1e-9);
        let at16 = rows.iter().find(|r| r.batch == 16).unwrap();
        assert!(
            at16.speedup_vs_solo >= 10.0,
            "batch-16 modeled speedup {} below 10x",
            at16.speedup_vs_solo
        );
        // Rows are modeled, hence reproducible: same seed, same numbers.
        let again = serving_rows(Scale::Small, 7);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.makespan_us.to_bits(), b.makespan_us.to_bits());
            assert_eq!(a.packed_batches, b.packed_batches);
        }
    }

    #[test]
    fn tuned_rows_never_lose_to_the_halo_heuristic() {
        let rows = tuned_rows(Scale::Small);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.tuned_us <= r.halo_us * (1.0 + 1e-9),
                "{}: tuned {} vs HALO {}",
                r.program,
                r.tuned_us,
                r.halo_us
            );
            assert!(r.evaluated >= 1, "{}", r.program);
            assert_eq!(r.evaluated + r.pruned, r.space, "{}", r.program);
        }
        assert!(tune_geomean_gap(&rows) >= 1.0 - 1e-9);
    }

    #[test]
    fn table6_halo_time_is_iteration_independent_and_small() {
        let rows = table6(Scale::Small);
        for r in &rows {
            assert!(r.dacapo.iter().all(|&t| t > 0.0));
            assert!(r.halo > 0.0);
        }
        // DaCapo compile time grows along the sweep for the deep bodies.
        let kmeans = rows.iter().find(|r| r.bench == "K-means").unwrap();
        assert!(
            kmeans.dacapo[3] > kmeans.dacapo[0],
            "DaCapo compile time must grow with iterations: {:?}",
            kmeans.dacapo
        );
    }
}
