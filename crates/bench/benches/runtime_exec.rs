//! Criterion bench: end-to-end interpreter throughput for a compiled
//! benchmark under each compiler configuration (Figure 4's machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halo_bench::{bound_inputs, compile_bench, execute, Scale};
use halo_core::CompilerConfig;
use halo_ml::bench::{KMeans, Linear, MlBenchmark};

fn bench_execute(c: &mut Criterion) {
    let scale = Scale::Small;
    let mut group = c.benchmark_group("execute");
    let cases: Vec<(&dyn MlBenchmark, u64)> = vec![(&Linear, 10), (&KMeans, 3)];
    for (bench, iters) in cases {
        for config in [CompilerConfig::TypeMatched, CompilerConfig::Halo] {
            let compiled = compile_bench(bench, config, &[iters], scale).unwrap();
            let inputs = bound_inputs(bench, &[iters], scale);
            group.bench_with_input(
                BenchmarkId::new(config.name(), bench.name()),
                &(),
                |bn, ()| {
                    bn.iter(|| execute(&compiled.function, &inputs, scale, false));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_execute
}
criterion_main!(benches);
