//! Criterion bench: compilation time per configuration (Table 6's metric
//! under a statistics-grade harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halo_bench::{compile_bench, Scale};
use halo_core::CompilerConfig;
use halo_ml::bench::flat_benchmarks;

fn bench_compile(c: &mut Criterion) {
    let scale = Scale::Small;
    let mut group = c.benchmark_group("compile");
    for bench in flat_benchmarks() {
        group.bench_with_input(
            BenchmarkId::new("HALO", bench.name()),
            &bench,
            |bn, bench| {
                bn.iter(|| {
                    compile_bench(bench.as_ref(), CompilerConfig::Halo, &[40], scale).unwrap()
                });
            },
        );
        for iters in [10u64, 40] {
            group.bench_with_input(
                BenchmarkId::new(format!("DaCapo@{iters}"), bench.name()),
                &bench,
                |bn, bench| {
                    bn.iter(|| {
                        compile_bench(bench.as_ref(), CompilerConfig::DaCapo, &[iters], scale)
                            .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile
}
criterion_main!(benches);
