//! Criterion bench: simulation-backend op throughput and cost-model
//! evaluation (the substrate behind Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halo_ckks::{Backend, CkksParams, CostModel, CostedOp, SimBackend};

fn bench_backend_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_backend");
    for log_slots in [6u32, 10, 13] {
        let params = CkksParams {
            poly_degree: 2 << log_slots,
            ..CkksParams::paper()
        };
        let be = SimBackend::new(params.clone());
        let data: Vec<f64> = (0..params.slots()).map(|i| i as f64 * 1e-3).collect();
        let a = be.encrypt(&data, 10).unwrap();
        let b = be.encrypt(&data, 10).unwrap();
        group.bench_with_input(
            BenchmarkId::new("multcc", format!("2^{log_slots} slots")),
            &(),
            |bn, ()| bn.iter(|| be.mult(&a, &b).unwrap()),
        );
        let be2 = SimBackend::new(params.clone());
        let a2 = be2.encrypt(&data, 10).unwrap();
        group.bench_with_input(
            BenchmarkId::new("rotate", format!("2^{log_slots} slots")),
            &(),
            |bn, ()| bn.iter(|| be2.rotate(&a2, 3).unwrap()),
        );
        let be3 = SimBackend::new(params);
        let a3 = be3.encrypt(&data, 1).unwrap();
        group.bench_with_input(
            BenchmarkId::new("bootstrap", format!("2^{log_slots} slots")),
            &(),
            |bn, ()| bn.iter(|| be3.bootstrap(&a3, 16).unwrap()),
        );
    }
    group.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    let m = CostModel::new();
    c.bench_function("cost_model_interpolation", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for level in 1..=16 {
                acc += m.latency_us(CostedOp::MultCC { level });
                acc += m.latency_us(CostedOp::Bootstrap { target: level });
            }
            acc
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_backend_ops, bench_cost_model
}
criterion_main!(benches);
