//! The seeded random program generator.
//!
//! Emits well-formed traced IR shaped like the paper's benchmark space:
//! nested static/dynamic-trip loops, loop-carried ciphertext variables,
//! rotations, and mixed cipher/plain arithmetic. Two properties make every
//! generated program a valid differential-testing subject:
//!
//! 1. **Pool-index operand encoding.** Operands are indices into the pool
//!    of values in scope, taken modulo the pool length — any index is
//!    well-formed, so shrinking (dropping ops, truncating loops) can never
//!    produce a dangling reference.
//! 2. **Period preservation.** Inputs are `NUM_ELEMS`-periodic slot
//!    vectors, and every emitted op (elementwise arithmetic, rotation)
//!    preserves that period — the packing contract of §6.1 holds by
//!    construction, so packing must be a semantic no-op.
//!
//! Dynamic trip counts are generated `>= 1`: peeling always executes the
//! first iteration, so a trip count that could resolve to 0 at run time is
//! outside HALO's supported program space (constant-0 trips are fine — the
//! compiler folds them away statically, and the generator emits them).

use halo_ir::func::ValueId;
use halo_ir::op::TripCount;
use halo_ir::{Function, FunctionBuilder};
use halo_runtime::Inputs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Slots per ciphertext (ring degree 32 on the toy backend).
pub const SLOTS: usize = 16;
/// Programmer-declared valid elements per carried ciphertext.
pub const NUM_ELEMS: usize = 4;

/// One straight-line op. Operand fields are pool indices (mod pool len);
/// constants are quantized to eighths so printed specs reproduce exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenOp {
    /// Pool\[a\] + pool\[b\].
    Add(usize, usize),
    /// Pool\[a\] − pool\[b\].
    Sub(usize, usize),
    /// Pool\[a\] · pool\[b\].
    Mul(usize, usize),
    /// Pool\[a\] + c/8.
    AddConst(usize, i32),
    /// Pool\[a\] · c/8.
    MulConst(usize, i32),
    /// Cyclic rotation of pool\[a\] by the offset.
    Rotate(usize, i64),
    /// −pool\[a\].
    Negate(usize),
}

/// A body/program item: a straight-line op or a (possibly nested) loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenItem {
    /// A straight-line op.
    Op(GenOp),
    /// A structured loop.
    Loop(GenLoop),
}

/// A structured loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenLoop {
    /// Trip count (the resolved value when `dynamic`).
    pub trip: u64,
    /// Whether the trip count is a run-time symbol (HALO's headline case;
    /// the DaCapo twin freezes it to `trip`).
    pub dynamic: bool,
    /// Number of loop-carried variables.
    pub carried: usize,
    /// Per carried variable: initialize from a plain constant (true) or
    /// from a pool value (false). Plain inits exercise peeling's
    /// encryption-status matching.
    pub plain_inits: Vec<bool>,
    /// Loop body items.
    pub body: Vec<GenItem>,
}

/// A complete generated program, reproducible from `seed` alone.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// The generator seed that produced (or shrank from) this spec.
    pub seed: u64,
    /// Top-level items.
    pub items: Vec<GenItem>,
    /// Slot data for cipher input `x` (`NUM_ELEMS` values, tiled).
    pub input_x: Vec<f64>,
    /// Slot data for cipher input `y` (`NUM_ELEMS` values, tiled).
    pub input_y: Vec<f64>,
}

impl ProgramSpec {
    /// A structural size metric: strictly decreased by every shrinking
    /// candidate, so greedy shrinking terminates.
    #[must_use]
    pub fn size(&self) -> u64 {
        fn items_size(items: &[GenItem]) -> u64 {
            items
                .iter()
                .map(|it| match it {
                    GenItem::Op(_) => 1,
                    GenItem::Loop(l) => {
                        2 + l.trip + l.carried as u64 + u64::from(l.dynamic) + items_size(&l.body)
                    }
                })
                .sum()
        }
        items_size(&self.items)
    }
}

fn gen_op(rng: &mut StdRng) -> GenOp {
    let idx = |rng: &mut StdRng| rng.gen_range(0..32usize);
    match rng.gen_range(0..8u32) {
        0 => GenOp::Add(idx(rng), idx(rng)),
        1 => GenOp::Sub(idx(rng), idx(rng)),
        // Multiplication weighted up: level consumption is where
        // bootstrapping management earns its keep.
        2 | 3 => GenOp::Mul(idx(rng), idx(rng)),
        4 => GenOp::AddConst(idx(rng), rng.gen_range(-6..=6)),
        5 => GenOp::MulConst(idx(rng), rng.gen_range(-6..=6)),
        6 => GenOp::Rotate(idx(rng), rng.gen_range(1..=7)),
        _ => GenOp::Negate(idx(rng)),
    }
}

fn gen_loop(rng: &mut StdRng, depth: usize) -> GenLoop {
    let dynamic = rng.gen_bool(0.5);
    // Dynamic trips are >= 1 (see module docs); constant trips include the
    // degenerate 0 and 1 cases the compiler folds.
    let trip = if dynamic {
        rng.gen_range(1..=4u64)
    } else {
        rng.gen_range(0..=4u64)
    };
    let carried = rng.gen_range(1..=3usize);
    let plain_inits = (0..carried).map(|_| rng.gen_bool(0.3)).collect();
    let n_body = rng.gen_range(2..=5usize);
    let mut body: Vec<GenItem> = (0..n_body).map(|_| GenItem::Op(gen_op(rng))).collect();
    if depth == 0 && rng.gen_bool(0.35) {
        body.push(GenItem::Loop(gen_loop(rng, depth + 1)));
        // A consumer after the nested loop so its results feed the pool.
        body.push(GenItem::Op(gen_op(rng)));
    }
    GenLoop {
        trip,
        dynamic,
        carried,
        plain_inits,
        body,
    }
}

fn gen_data(rng: &mut StdRng) -> Vec<f64> {
    // Bounded away from 0 and 1 keeps mult chains from collapsing to 0 or
    // exploding too often; constants can still drive values anywhere.
    (0..NUM_ELEMS).map(|_| rng.gen_range(0.3..0.9)).collect()
}

/// Generates the program for `seed`. Deterministic: the same seed always
/// yields the same spec.
#[must_use]
pub fn gen_spec(seed: u64) -> ProgramSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::new();
    for _ in 0..rng.gen_range(1..=2usize) {
        for _ in 0..rng.gen_range(0..=2usize) {
            items.push(GenItem::Op(gen_op(&mut rng)));
        }
        items.push(GenItem::Loop(gen_loop(&mut rng, 0)));
    }
    for _ in 0..rng.gen_range(0..=2usize) {
        items.push(GenItem::Op(gen_op(&mut rng)));
    }
    ProgramSpec {
        seed,
        items,
        input_x: gen_data(&mut rng),
        input_y: gen_data(&mut rng),
    }
}

/// Emits `items` into the builder, growing `pool` with every result.
/// `next_sym` numbers dynamic-trip symbols `n0, n1, ...` in pre-order —
/// [`bind_inputs`] walks the same order, so symbols and environment values
/// always line up.
fn emit_items(
    b: &mut FunctionBuilder,
    items: &[GenItem],
    pool: &mut Vec<ValueId>,
    dynamic: bool,
    next_sym: &mut usize,
) {
    for item in items {
        match item {
            GenItem::Op(op) => {
                let pick = |i: usize, pool: &[ValueId]| pool[i % pool.len()];
                let v = match *op {
                    GenOp::Add(i, j) => {
                        let (a, c) = (pick(i, pool), pick(j, pool));
                        b.add(a, c)
                    }
                    GenOp::Sub(i, j) => {
                        let (a, c) = (pick(i, pool), pick(j, pool));
                        b.sub(a, c)
                    }
                    GenOp::Mul(i, j) => {
                        let (a, c) = (pick(i, pool), pick(j, pool));
                        b.mul(a, c)
                    }
                    GenOp::AddConst(i, c) => {
                        let a = pick(i, pool);
                        let k = b.const_splat(f64::from(c) * 0.125);
                        b.add(a, k)
                    }
                    GenOp::MulConst(i, c) => {
                        let a = pick(i, pool);
                        let k = b.const_splat(f64::from(c) * 0.125);
                        b.mul(a, k)
                    }
                    GenOp::Rotate(i, r) => {
                        let a = pick(i, pool);
                        b.rotate(a, r)
                    }
                    GenOp::Negate(i) => {
                        let a = pick(i, pool);
                        b.negate(a)
                    }
                };
                pool.push(v);
            }
            GenItem::Loop(l) => {
                let sym = *next_sym;
                *next_sym += 1;
                let trip = if l.dynamic && dynamic {
                    TripCount::dynamic(format!("n{sym}"))
                } else {
                    TripCount::Constant(l.trip)
                };
                let inits: Vec<ValueId> = (0..l.carried)
                    .map(|k| {
                        if l.plain_inits[k] {
                            b.const_splat(0.25 + 0.125 * k as f64)
                        } else {
                            pool[(k * 7 + 1) % pool.len()]
                        }
                    })
                    .collect();
                let carried = l.carried;
                let body_items = &l.body;
                let outer_pool = pool.clone();
                let results = b.for_loop(trip, &inits, NUM_ELEMS, |b, args| {
                    // Body scope: carried variables first (so low indices
                    // favor them), then everything visible outside.
                    let mut body_pool: Vec<ValueId> = args.to_vec();
                    body_pool.extend_from_slice(&outer_pool);
                    emit_items(b, body_items, &mut body_pool, dynamic, next_sym);
                    // Yield the last `carried` values computed (possibly
                    // plain — peeling must cope).
                    (0..carried)
                        .map(|k| body_pool[body_pool.len() - 1 - k])
                        .collect()
                });
                pool.extend(results);
            }
        }
    }
}

/// Builds the traced function for `spec`.
///
/// With `dynamic = false` every dynamic trip count is frozen to its
/// resolved value — the *constant twin* the DaCapo baseline can compile.
/// Both variants compute the same function for the environment
/// [`bind_inputs`] produces.
#[must_use]
pub fn build(spec: &ProgramSpec, dynamic: bool) -> Function {
    let mut b = FunctionBuilder::new("fuzz", SLOTS);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let mut pool = vec![x, y];
    let mut next_sym = 0usize;
    emit_items(&mut b, &spec.items, &mut pool, dynamic, &mut next_sym);
    let n_out = pool.len().min(3);
    let outs: Vec<ValueId> = pool[pool.len() - n_out..].to_vec();
    b.ret(&outs);
    b.finish()
}

/// Binds input data and the trip-count environment for `spec`, numbering
/// symbols in the same pre-order as [`build`].
#[must_use]
pub fn bind_inputs(spec: &ProgramSpec) -> Inputs {
    fn walk(items: &[GenItem], next_sym: &mut usize, inputs: &mut Vec<(String, u64)>) {
        for item in items {
            if let GenItem::Loop(l) = item {
                let sym = *next_sym;
                *next_sym += 1;
                if l.dynamic {
                    inputs.push((format!("n{sym}"), l.trip));
                } else {
                    // The symbol number is consumed even for constant
                    // trips so nested numbering matches `build`.
                }
                walk(&l.body, next_sym, inputs);
            }
        }
    }
    let mut env = Vec::new();
    let mut next_sym = 0usize;
    walk(&spec.items, &mut next_sym, &mut env);
    let mut inputs = Inputs::new()
        .cipher("x", spec.input_x.clone())
        .cipher("y", spec.input_y.clone());
    for (sym, val) in env {
        inputs = inputs.env(sym, val);
    }
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::verify::verify_traced;
    use halo_runtime::reference_run;

    #[test]
    fn generated_programs_are_well_formed() {
        for seed in 0..64u64 {
            let spec = gen_spec(seed);
            assert!(!spec.items.is_empty(), "seed {seed}");
            for dynamic in [true, false] {
                let f = build(&spec, dynamic);
                verify_traced(&f).unwrap_or_else(|e| panic!("seed {seed} dynamic={dynamic}: {e}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 7, 123, u64::MAX] {
            assert_eq!(gen_spec(seed), gen_spec(seed));
        }
    }

    #[test]
    fn dynamic_and_constant_twins_agree_on_the_reference() {
        for seed in 0..32u64 {
            let spec = gen_spec(seed);
            let inputs = bind_inputs(&spec);
            let dynamic = reference_run(&build(&spec, true), &inputs, SLOTS).unwrap();
            let frozen = reference_run(&build(&spec, false), &inputs, SLOTS).unwrap();
            assert_eq!(dynamic, frozen, "seed {seed}");
        }
    }

    #[test]
    fn dynamic_trips_are_never_zero() {
        fn check(items: &[GenItem]) {
            for item in items {
                if let GenItem::Loop(l) = item {
                    if l.dynamic {
                        assert!(l.trip >= 1);
                    }
                    check(&l.body);
                }
            }
        }
        for seed in 0..256u64 {
            check(&gen_spec(seed).items);
        }
    }

    #[test]
    fn corpus_covers_the_advertised_grammar() {
        // Across a modest seed range the generator must actually produce
        // the features the fuzzer claims to exercise.
        let specs: Vec<ProgramSpec> = (0..128).map(gen_spec).collect();
        fn any_loop(items: &[GenItem], pred: &impl Fn(&GenLoop) -> bool) -> bool {
            items.iter().any(|it| match it {
                GenItem::Op(_) => false,
                GenItem::Loop(l) => pred(l) || any_loop(&l.body, pred),
            })
        }
        fn any_op(items: &[GenItem], pred: &impl Fn(&GenOp) -> bool) -> bool {
            items.iter().any(|it| match it {
                GenItem::Op(o) => pred(o),
                GenItem::Loop(l) => any_op(&l.body, pred),
            })
        }
        let has = |p: &dyn Fn(&GenLoop) -> bool| specs.iter().any(|s| any_loop(&s.items, &p));
        assert!(has(&|l| l.dynamic), "dynamic trips");
        assert!(has(&|l| !l.dynamic), "static trips");
        assert!(has(&|l| l.trip == 0 && !l.dynamic), "zero-trip loops");
        assert!(has(&|l| l.carried > 1), "multiple carried vars");
        assert!(has(&|l| l.plain_inits.iter().any(|&p| p)), "plain inits");
        assert!(
            has(&|l| l.body.iter().any(|it| matches!(it, GenItem::Loop(_)))),
            "nested loops"
        );
        let has_op = |p: &dyn Fn(&GenOp) -> bool| specs.iter().any(|s| any_op(&s.items, &p));
        assert!(has_op(&|o| matches!(o, GenOp::Rotate(..))), "rotations");
        assert!(has_op(&|o| matches!(o, GenOp::Mul(..))), "ciphertext mults");
        assert!(
            has_op(&|o| matches!(o, GenOp::MulConst(..) | GenOp::AddConst(..))),
            "plain-operand arithmetic"
        );
    }
}
