//! # halo-fuzz — differential compiler fuzzing
//!
//! Finds miscompiles before users do (DESIGN.md §11): a seeded generator
//! emits random loop programs shaped like the paper's benchmark space, and
//! every compiler configuration's output is cross-checked against the
//! plaintext reference, against the other configurations, and against the
//! toy RNS-CKKS backend's genuine lattice arithmetic — with the per-pass
//! verifier ([`halo_core::PipelineHooks`]) localizing any invariant
//! violation to the first pass that introduced it.
//!
//! - [`gen`] — the random program generator (pool-index operand encoding,
//!   period-preserving op set).
//! - [`diff`] — the differential pipeline: reference → exact sim → noisy
//!   determinism → toy backend.
//! - [`shrink`] — greedy structural shrinking of failing cases.
//! - [`mutate`] — known-bad pass mutations for harness self-tests.
//! - [`report`] — the `FUZZ_REPORT.json` artifact (`halo-fuzz-report/1`).
//!
//! The `halo-fuzz` binary drives it all; `cargo run -p halo-fuzz -- --help`
//! for the CLI, or reproduce a CI failure with `--seed N`.

pub mod diff;
pub mod gen;
pub mod mutate;
pub mod report;
pub mod shrink;

pub use diff::{run_case, DiffOptions, FuzzFailure, Stage, Verdict};
pub use gen::{bind_inputs, build, gen_spec, ProgramSpec};
pub use mutate::known_bad_mutation;
pub use report::{FuzzReport, ReportedFailure};
pub use shrink::shrink;
