//! Autotuner sweep over the seeded fuzz loop corpus: for each generated
//! program, compare the HALO heuristic's modeled cost against the
//! branch-and-bound autotuner's best plan, then write the
//! machine-readable `BENCH_TUNE.json` (schema `halo-bench-tune/1`,
//! destination `HALO_BENCH_JSON_DIR`, default `results/`). The emitted
//! document is round-tripped through its own validator before being
//! written, so a sweep that breaks the optimality contract (a tuned plan
//! costlier than HALO anywhere, or no strict improvement at all) fails
//! here rather than in CI.
//!
//! ```sh
//! cargo run --release -p halo-fuzz --bin tune_bench
//! cargo run --release -p halo-fuzz --bin tune_bench -- --seeds 48 --start 100
//! ```

use std::time::Instant;

use halo_bench::json::{self, num, Json};
use halo_bench::tables::{tune_geomean_gap, tune_improved, tune_row, TuneRow};
use halo_core::{CompileOptions, ASSUMED_TRIPS};
use halo_fuzz::diff::fuzz_params;
use halo_fuzz::gen::{build, gen_spec};

fn arg(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let wall = Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds = arg(&args, "--seeds", 24);
    let start = arg(&args, "--start", 0);

    let opts = CompileOptions::new(fuzz_params());
    let rows: Vec<TuneRow> = (start..start + seeds)
        .map(|seed| {
            let spec = gen_spec(seed);
            let src = build(&spec, true);
            let row = tune_row(&format!("fuzz-{seed}"), &src, &opts);
            println!(
                "{:<10} HALO {:>12.1}us  tuned {:>12.1}us  gap {:>5.2}x  \
                 [{} evaluated / {} pruned / {} space]  {}",
                row.program,
                row.halo_us,
                row.tuned_us,
                row.gap(),
                row.evaluated,
                row.pruned,
                row.space,
                row.plan
            );
            row
        })
        .collect();

    println!(
        "\n{} corpus programs: geomean heuristic-vs-optimal gap {:.3}x, \
         {} strictly improved",
        rows.len(),
        tune_geomean_gap(&rows),
        tune_improved(&rows)
    );

    let doc = json::obj(vec![
        ("schema", Json::Str("halo-bench-tune/1".into())),
        ("tuner", Json::Str("branch-bound".into())),
        ("seeds", num(seeds as f64)),
        ("start_seed", num(start as f64)),
        ("assumed_trips", num(ASSUMED_TRIPS as f64)),
        ("wall_ms", num(wall.elapsed().as_secs_f64() * 1e3)),
        (
            "rows",
            Json::Arr(rows.iter().map(TuneRow::to_json).collect()),
        ),
        ("improved", num(tune_improved(&rows) as f64)),
        ("geomean_gap", num(tune_geomean_gap(&rows))),
    ]);
    json::validate_tune(&doc).expect("emitted document must satisfy its own schema");
    let dir = halo_bench::bench_json_dir().expect("bench json dir");
    let path = dir.join("BENCH_TUNE.json");
    std::fs::write(&path, doc.pretty()).expect("write BENCH_TUNE.json");
    println!("wrote {}", path.display());
}
