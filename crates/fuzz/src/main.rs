//! The `halo-fuzz` CLI: seeded differential fuzzing of the compiler.
//!
//! ```text
//! cargo run -p halo-fuzz -- --seeds 200          # a fuzzing campaign
//! cargo run -p halo-fuzz -- --seed 17            # reproduce one case
//! cargo run -p halo-fuzz -- --inject-bad-pass peel   # harness self-test
//! ```
//!
//! Exit code 0 means zero miscompiles (or, with `--inject-bad-pass`, that
//! every injected bug was caught and localized to the right pass). A
//! `FUZZ_REPORT.json` artifact is written either way.

use halo_core::Pass;
use halo_fuzz::diff::{run_case, DiffOptions, Stage, Verdict};
use halo_fuzz::gen::gen_spec;
use halo_fuzz::report::{FuzzReport, ReportedFailure};
use halo_fuzz::shrink::shrink;

const USAGE: &str = "\
halo-fuzz: differential compiler fuzzing (HALO vs DaCapo vs reference)

USAGE: halo-fuzz [OPTIONS]

OPTIONS:
  --seeds <N>             number of seeds to run (default 32)
  --start <S>             first seed (default 0)
  --seed <X>              run exactly one seed (implies --seeds 1 --start X)
  --no-toy                skip the toy RNS-CKKS backend oracle
  --no-pass-verify        disable the per-pass verifier
  --shrink-steps <N>      max candidate evaluations while shrinking (default 300)
  --inject-bad-pass <P>   self-test: inject a known-bad mutation after pass
                          P ('peel' or 'levels'); every case must then fail
                          with a PassVerify localized to P
  --help                  print this help
";

struct Args {
    seeds: u64,
    start: u64,
    check_toy: bool,
    verify_passes: bool,
    shrink_steps: usize,
    inject: Option<Pass>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 32,
        start: 0,
        check_toy: true,
        verify_passes: true,
        shrink_steps: 300,
        inject: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--start" => {
                args.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?;
            }
            "--seed" => {
                args.start = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                args.seeds = 1;
            }
            "--no-toy" => args.check_toy = false,
            "--no-pass-verify" => args.verify_passes = false,
            "--shrink-steps" => {
                args.shrink_steps = value("--shrink-steps")?
                    .parse()
                    .map_err(|e| format!("--shrink-steps: {e}"))?;
            }
            "--inject-bad-pass" => {
                let name = value("--inject-bad-pass")?;
                let pass =
                    Pass::from_name(&name).ok_or_else(|| format!("unknown pass '{name}'"))?;
                if !halo_fuzz::mutate::INJECTABLE.contains(&pass) {
                    return Err(format!(
                        "pass '{name}' has no known-bad mutation (use 'peel' or 'levels')"
                    ));
                }
                args.inject = Some(pass);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let opts = DiffOptions {
        check_toy: args.check_toy,
        verify_passes: args.verify_passes,
        inject: args.inject,
        ..DiffOptions::default()
    };

    let mut report = FuzzReport {
        seeds: args.seeds,
        start_seed: args.start,
        pass_verify: args.verify_passes,
        ..FuzzReport::default()
    };
    // Self-test accounting: how many injected bugs were caught at (and
    // only at) the expected pass.
    let mut localized = 0u64;
    let mut mislocalized = 0u64;

    let t0 = std::time::Instant::now();
    for seed in args.start..args.start.saturating_add(args.seeds) {
        let spec = gen_spec(seed);
        match run_case(&spec, &opts) {
            Ok(Verdict::Ok) => report.ran += 1,
            Ok(Verdict::Skipped(why)) => {
                report.skipped += 1;
                eprintln!("seed {seed}: skipped ({why})");
            }
            Err(failure) => {
                report.ran += 1;
                if let Some(expected) = args.inject {
                    // Self-test mode: the failure is the point — check it
                    // landed on the right pass instead of shrinking.
                    let hit = matches!(
                        &failure.stage,
                        Stage::PassVerify { pass } if pass == expected.name()
                    );
                    if hit {
                        localized += 1;
                    } else {
                        mislocalized += 1;
                        eprintln!(
                            "seed {seed}: injected '{}' NOT localized: {} ({})",
                            expected.name(),
                            failure.stage.name(),
                            failure.detail
                        );
                    }
                    report.failures.push(ReportedFailure {
                        failure,
                        shrunk: spec,
                        shrink_steps: 0,
                    });
                } else {
                    eprintln!(
                        "seed {seed}: FAIL at {} ({}): {}",
                        failure.stage.name(),
                        failure.config.unwrap_or("-"),
                        failure.detail
                    );
                    let (shrunk, steps) = shrink(&spec, &failure, &opts, args.shrink_steps);
                    eprintln!(
                        "seed {seed}: shrunk {} -> {} in {steps} steps: {shrunk:?}",
                        spec.size(),
                        shrunk.size()
                    );
                    report.failures.push(ReportedFailure {
                        failure,
                        shrunk,
                        shrink_steps: steps,
                    });
                }
            }
        }
    }

    match report.write() {
        Ok(path) => eprintln!("report: {}", path.display()),
        Err(e) => {
            eprintln!("error: writing FUZZ_REPORT.json: {e}");
            std::process::exit(2);
        }
    }

    let secs = t0.elapsed().as_secs_f64();
    if let Some(expected) = args.inject {
        println!(
            "halo-fuzz self-test: injected '{}' over {} cases: {} localized, {} mislocalized, {} skipped ({secs:.1}s)",
            expected.name(),
            report.ran,
            localized,
            mislocalized,
            report.skipped
        );
        if mislocalized > 0 || localized == 0 {
            std::process::exit(1);
        }
    } else {
        println!(
            "halo-fuzz: {} cases, {} skipped, {} failures ({secs:.1}s)",
            report.ran,
            report.skipped,
            report.failures.len()
        );
        if !report.failures.is_empty() {
            std::process::exit(1);
        }
    }
}
