//! Known-bad pass mutations (test-only).
//!
//! Each mutation models a realistic pass bug and is applied through
//! [`halo_core::PipelineHooks::mutate_after`]; the per-pass verifier must
//! catch it at the boundary of the pass it was injected after — proving
//! the harness localizes real bugs, not just that programs usually work.

use halo_core::Pass;
use halo_ir::func::OpId;
use halo_ir::op::Opcode;
use halo_ir::Function;

/// The injectable passes: one breaking a *traced* invariant (structure),
/// one breaking a *typed* invariant (levels).
pub const INJECTABLE: [Pass; 2] = [Pass::Peel, Pass::AssignLevels];

/// Builds the known-bad mutation for `pass`.
///
/// - After `peel`: drop one operand from the first `For` op — the arity
///   mismatch a pass forgetting to thread a carried variable would cause.
/// - After `levels`: corrupt one result's level — the stale-metadata bug a
///   pass rewriting ops without re-inferring types would cause.
///
/// Other passes fall back to the structural mutation (applied wherever
/// they run); only [`INJECTABLE`] is exercised by the CLI.
#[must_use]
pub fn known_bad_mutation(pass: Pass) -> Box<dyn FnMut(&mut Function)> {
    match pass {
        Pass::AssignLevels | Pass::Tune | Pass::FinalDce => Box::new(|f: &mut Function| {
            // Corrupt a *compute* op's result: input/const levels are
            // boundary data the verifier takes on trust, but a computed
            // level inconsistent with its operands is exactly the
            // invariant `verify_typed` owns.
            let mut target: Option<OpId> = None;
            f.walk_ops(|_, id| {
                let op = f.op(id);
                if target.is_none()
                    && !op.results.is_empty()
                    && !matches!(op.opcode, Opcode::Input { .. } | Opcode::Const(_))
                {
                    target = Some(id);
                }
            });
            if let Some(id) = target {
                let v = f.op(id).results[0];
                f.value_mut(v).ty.level = 999;
            }
        }),
        _ => Box::new(|f: &mut Function| {
            let mut target: Option<OpId> = None;
            f.walk_ops(|_, id| {
                if target.is_none() && matches!(f.op(id).opcode, Opcode::For { .. }) {
                    target = Some(id);
                }
            });
            if let Some(id) = target {
                f.op_mut(id).operands.pop();
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::verify::verify_traced;

    #[test]
    fn structural_mutation_breaks_a_loop_program() {
        let spec = crate::gen::gen_spec(3);
        let mut f = crate::gen::build(&spec, true);
        verify_traced(&f).expect("valid before mutation");
        let mut mutate = known_bad_mutation(Pass::Peel);
        mutate(&mut f);
        verify_traced(&f).expect_err("invalid after dropping a For operand");
    }
}
