//! Greedy structural case shrinking.
//!
//! Every candidate strictly reduces [`ProgramSpec::size`], so the greedy
//! accept-and-restart loop terminates. Candidates are sound by
//! construction: operands are pool indices taken modulo the pool length
//! ([`crate::gen`]), so dropping ops or truncating carried variables can
//! never dangle a reference. A candidate is accepted when the case still
//! fails at the *same stage* (same [`Stage::name`], and for pass-verify
//! failures the same pass) — shrinking must not wander onto a different
//! bug.

use crate::diff::{run_case, DiffOptions, FuzzFailure, Stage};
use crate::gen::{GenItem, ProgramSpec};

/// Whether two failures count as "the same bug" for shrinking purposes.
fn same_failure(a: &Stage, b: &Stage) -> bool {
    match (a, b) {
        (Stage::PassVerify { pass: pa }, Stage::PassVerify { pass: pb }) => pa == pb,
        _ => a.name() == b.name(),
    }
}

/// All single-step reductions of `items`, paired with nothing — the spec
/// wrapper happens in [`candidates`].
fn item_candidates(items: &[GenItem]) -> Vec<Vec<GenItem>> {
    let mut out = Vec::new();
    for (i, item) in items.iter().enumerate() {
        // Drop the item entirely.
        let mut dropped = items.to_vec();
        dropped.remove(i);
        out.push(dropped);
        if let GenItem::Loop(l) = item {
            let with = |l2: crate::gen::GenLoop| {
                let mut v = items.to_vec();
                v[i] = GenItem::Loop(l2);
                v
            };
            // Reduce the trip count (dynamic trips stay >= 1).
            let floor = u64::from(l.dynamic);
            if l.trip > floor {
                let mut l2 = l.clone();
                l2.trip -= 1;
                out.push(with(l2));
            }
            // Freeze a dynamic trip to a constant.
            if l.dynamic {
                let mut l2 = l.clone();
                l2.dynamic = false;
                out.push(with(l2));
            }
            // Drop the last carried variable.
            if l.carried > 1 {
                let mut l2 = l.clone();
                l2.carried -= 1;
                l2.plain_inits.truncate(l2.carried);
                out.push(with(l2));
            }
            // Recurse into the body.
            for body2 in item_candidates(&l.body) {
                let mut l2 = l.clone();
                l2.body = body2;
                out.push(with(l2));
            }
        }
    }
    out
}

fn candidates(spec: &ProgramSpec) -> Vec<ProgramSpec> {
    item_candidates(&spec.items)
        .into_iter()
        .map(|items| ProgramSpec {
            items,
            ..spec.clone()
        })
        .collect()
}

/// Shrinks `spec` while it keeps failing like `original`; returns the
/// smallest reproducer found and the number of accepted reductions.
/// `max_steps` bounds the total candidate evaluations (each runs the full
/// differential pipeline).
#[must_use]
pub fn shrink(
    spec: &ProgramSpec,
    original: &FuzzFailure,
    opts: &DiffOptions,
    max_steps: usize,
) -> (ProgramSpec, usize) {
    let mut best = spec.clone();
    let mut accepted = 0usize;
    let mut evals = 0usize;
    'outer: loop {
        for cand in candidates(&best) {
            debug_assert!(cand.size() < best.size());
            if evals >= max_steps {
                break 'outer;
            }
            evals += 1;
            if let Err(f) = run_case(&cand, opts) {
                if same_failure(&f.stage, &original.stage) {
                    best = cand;
                    accepted += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }
    (best, accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_spec;

    #[test]
    fn every_candidate_strictly_shrinks() {
        for seed in 0..64u64 {
            let spec = gen_spec(seed);
            for cand in candidates(&spec) {
                assert!(
                    cand.size() < spec.size(),
                    "seed {seed}: {} !< {}",
                    cand.size(),
                    spec.size()
                );
            }
        }
    }

    #[test]
    fn shrinking_an_impossible_tolerance_reaches_a_small_core() {
        // Force a universal failure (negative tolerance): the shrinker
        // should then strip the program down to very few items, proving it
        // actually reduces rather than stopping at the first fixpoint.
        let spec = gen_spec(5);
        let opts = DiffOptions {
            exact_rmse: -1.0,
            check_toy: false,
            ..DiffOptions::default()
        };
        let failure = run_case(&spec, &opts).expect_err("negative tolerance always fails");
        let (small, accepted) = shrink(&spec, &failure, &opts, 400);
        assert!(accepted > 0, "no reduction accepted");
        assert!(small.size() < spec.size());
        // The shrunk case must still reproduce.
        let again = run_case(&small, &opts).expect_err("shrunk case still fails");
        assert!(same_failure(&again.stage, &failure.stage));
    }
}
