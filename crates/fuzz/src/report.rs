//! The machine-readable failure artifact (`results/FUZZ_REPORT.json`,
//! schema `halo-fuzz-report/1`).
//!
//! Every fuzzer invocation writes one — a green run records the coverage
//! (seeds run/skipped); a red run additionally carries, per failure, the
//! seed, stage, configuration, diagnosis, the shrunk spec, and a
//! command line that reproduces it. CI round-trips the file through
//! `halo_bench::json::parse` + `validate_fuzz_report` before accepting it.

use halo_bench::json::{num, obj, Json};

use crate::diff::{FuzzFailure, Stage};
use crate::gen::ProgramSpec;

/// One reported failure.
#[derive(Debug, Clone)]
pub struct ReportedFailure {
    /// The differential failure itself.
    pub failure: FuzzFailure,
    /// The shrunk reproducer.
    pub shrunk: ProgramSpec,
    /// Accepted shrinking steps.
    pub shrink_steps: usize,
}

/// A full fuzzing-run report.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Seeds requested.
    pub seeds: u64,
    /// First seed.
    pub start_seed: u64,
    /// Cases actually executed through the differential pipeline.
    pub ran: u64,
    /// Cases skipped (degenerate magnitude).
    pub skipped: u64,
    /// Whether the per-pass verifier was enabled.
    pub pass_verify: bool,
    /// All failures, already shrunk.
    pub failures: Vec<ReportedFailure>,
}

impl FuzzReport {
    /// Serializes to the `halo-fuzz-report/1` document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let failures: Vec<Json> = self
            .failures
            .iter()
            .map(|rf| {
                let f = &rf.failure;
                let mut members = vec![
                    ("seed", num(f.seed as f64)),
                    ("stage", Json::Str(f.stage.name().into())),
                ];
                if let Stage::PassVerify { pass } = &f.stage {
                    members.push(("pass", Json::Str(pass.clone())));
                }
                if let Some(config) = f.config {
                    members.push(("config", Json::Str(config.into())));
                }
                members.extend([
                    ("detail", Json::Str(f.detail.clone())),
                    (
                        "repro",
                        Json::Str(format!("cargo run -p halo-fuzz -- --seed {}", f.seed)),
                    ),
                    ("shrink_steps", num(rf.shrink_steps as f64)),
                    ("shrunk_size", num(rf.shrunk.size() as f64)),
                    ("shrunk_spec", Json::Str(format!("{:?}", rf.shrunk))),
                ]);
                obj(members)
            })
            .collect();
        obj(vec![
            ("schema", Json::Str("halo-fuzz-report/1".into())),
            ("seeds", num(self.seeds as f64)),
            ("start_seed", num(self.start_seed as f64)),
            ("ran", num(self.ran as f64)),
            ("skipped", num(self.skipped as f64)),
            ("pass_verify", Json::Bool(self.pass_verify)),
            ("failures", Json::Arr(failures)),
        ])
    }

    /// Writes the report to `FUZZ_REPORT.json` under the bench JSON
    /// directory (`HALO_BENCH_JSON_DIR`, default `results/`), returning
    /// the path written.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or writing the file.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let path = halo_bench::bench_json_dir()?.join("FUZZ_REPORT.json");
        std::fs::write(&path, self.to_json().pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_bench::json::{parse, validate_fuzz_report};

    fn sample_report() -> FuzzReport {
        FuzzReport {
            seeds: 8,
            start_seed: 0,
            ran: 7,
            skipped: 1,
            pass_verify: true,
            failures: vec![ReportedFailure {
                failure: FuzzFailure {
                    seed: 3,
                    stage: Stage::PassVerify {
                        pass: "peel".into(),
                    },
                    config: Some("halo"),
                    detail: "op #4 (for in block b0): arity".into(),
                },
                shrunk: crate::gen::gen_spec(3),
                shrink_steps: 11,
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_parser_and_validator() {
        let text = sample_report().to_json().pretty();
        let parsed = parse(&text).expect("parses");
        validate_fuzz_report(&parsed).expect("validates");
        assert_eq!(parsed.get("ran").and_then(Json::as_num), Some(7.0));
        let failures = parsed.get("failures").and_then(Json::as_arr).unwrap();
        assert_eq!(failures[0].get("pass").and_then(Json::as_str), Some("peel"));
        assert!(failures[0]
            .get("repro")
            .and_then(Json::as_str)
            .unwrap()
            .contains("--seed 3"));
    }

    #[test]
    fn green_report_validates_too() {
        let green = FuzzReport {
            seeds: 32,
            ran: 30,
            skipped: 2,
            pass_verify: true,
            ..FuzzReport::default()
        };
        let parsed = parse(&green.to_json().pretty()).unwrap();
        validate_fuzz_report(&parsed).expect("empty failures array is valid");
    }
}
