//! Differential execution: one generated program, every compiler
//! configuration, three executors, one verdict.
//!
//! The oracle stack, in order of authority:
//!
//! 1. [`halo_runtime::reference_run`] on the traced source — exact
//!    plaintext ground truth.
//! 2. The exact simulation backend per compiled configuration — must match
//!    the reference within a tolerance that only covers f64 accumulation.
//! 3. The noisy simulation backend, run twice with one seed — must be
//!    bit-identical (the noise model is deterministic).
//! 4. The toy RNS-CKKS backend (real NTT/RNS lattice arithmetic) — must
//!    match the reference within the calibrated noise envelope.
//!
//! All configurations compile the same dynamic-trip program except DaCapo,
//! which gets the constant twin (freezing each dynamic trip to the value
//! the environment would supply) — the cross-check DaCapo-vs-HALO is
//! exactly the paper's correctness claim.

use halo_ckks::{CkksParams, SimBackend, ToyBackend};
use halo_core::{
    compile_with_hooks, CompileError, CompileOptions, CompilerConfig, Pass, PipelineHooks,
};
use halo_ir::verify::verify_traced;
use halo_ir::Function;
use halo_runtime::{reference_run, rmse, Executor};

use crate::gen::{bind_inputs, build, ProgramSpec, SLOTS};
use crate::mutate::known_bad_mutation;

/// Where in the differential pipeline a case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stage {
    /// The generator emitted an invalid program (a fuzzer bug).
    Generate,
    /// A configuration failed to compile a valid program.
    Compile,
    /// The per-pass verifier localized an invariant violation.
    PassVerify {
        /// [`Pass::name`] of the offending pass.
        pass: String,
    },
    /// A compiled program failed to execute.
    Exec,
    /// Compiled output disagreed with the oracle beyond tolerance.
    Mismatch,
    /// Two identically-seeded noisy runs were not bit-identical.
    Determinism,
}

impl Stage {
    /// Stable name for reports and shrink-equivalence.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Generate => "generate",
            Stage::Compile => "compile",
            Stage::PassVerify { .. } => "pass-verify",
            Stage::Exec => "exec",
            Stage::Mismatch => "mismatch",
            Stage::Determinism => "determinism",
        }
    }
}

/// A failed differential case.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The originating generator seed.
    pub seed: u64,
    /// Where the case failed.
    pub stage: Stage,
    /// The configuration involved, when one was.
    pub config: Option<&'static str>,
    /// Human-readable diagnosis (verifier message, RMSE, ...).
    pub detail: String,
}

/// Knobs for one differential run.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Cross-check on the toy RNS-CKKS backend (slower; skipped when the
    /// reference magnitude exceeds [`DiffOptions::toy_magnitude_cap`]).
    pub check_toy: bool,
    /// Run the per-pass verifier at every pass boundary.
    pub verify_passes: bool,
    /// RMSE tolerance on the exact sim backend, per unit of output
    /// magnitude (f64 accumulation only).
    pub exact_rmse: f64,
    /// RMSE tolerance on the toy backend, per unit of output magnitude
    /// (rf_bits = 40 fixed-point noise, calibrated against the e2e suite).
    pub toy_rmse: f64,
    /// Skip cases whose reference output exceeds this magnitude (mult
    /// chains can overflow f64; nothing to differentially test there).
    pub magnitude_cap: f64,
    /// Largest reference magnitude the toy backend's fixed-point encoding
    /// represents accurately at these parameters.
    pub toy_magnitude_cap: f64,
    /// Inject the known-bad mutation after this pass (test-only): the run
    /// must then fail with [`Stage::PassVerify`] naming that pass.
    pub inject: Option<Pass>,
    /// Also autotune the program and push the winning
    /// [`CompilerConfig::Tuned`] plan through the whole oracle stack — the
    /// autotuner's "no miscompiles from exotic plans" differential check.
    pub tune: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            check_toy: true,
            verify_passes: true,
            exact_rmse: 1e-6,
            toy_rmse: 2e-2,
            magnitude_cap: 1e6,
            toy_magnitude_cap: 8.0,
            inject: None,
            tune: false,
        }
    }
}

/// A passed (or skipped) differential case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All oracles agreed.
    Ok,
    /// The case was skipped, with the reason (degenerate magnitude).
    Skipped(String),
}

/// Compilation parameters for the fuzz corpus: 16 slots so the toy
/// backend (ring degree 32) can execute the same compiled program.
#[must_use]
pub fn fuzz_params() -> CkksParams {
    CkksParams {
        poly_degree: SLOTS * 2,
        max_level: 16,
        rf_bits: 40,
    }
}

/// An error exceeds its tolerance — treating NaN as exceeding, so a
/// poisoned output can never pass an oracle.
fn exceeds(err: f64, bound: f64) -> bool {
    err.is_nan() || err >= bound
}

fn fail(seed: u64, stage: Stage, config: Option<&'static str>, detail: String) -> FuzzFailure {
    FuzzFailure {
        seed,
        stage,
        config,
        detail,
    }
}

/// Runs one spec through the full differential pipeline.
///
/// # Errors
///
/// Returns the first [`FuzzFailure`] encountered; the caller shrinks and
/// reports it.
pub fn run_case(spec: &ProgramSpec, opts: &DiffOptions) -> Result<Verdict, FuzzFailure> {
    let seed = spec.seed;
    let src = build(spec, true);
    verify_traced(&src)
        .map_err(|e| fail(seed, Stage::Generate, None, format!("traced verify: {e}")))?;
    let inputs = bind_inputs(spec);
    let want = reference_run(&src, &inputs, SLOTS)
        .map_err(|e| fail(seed, Stage::Generate, None, format!("reference: {e}")))?;

    let max_abs = want.iter().flatten().fold(0.0f64, |m, v| m.max(v.abs()));
    if !max_abs.is_finite() || max_abs > opts.magnitude_cap {
        return Ok(Verdict::Skipped(format!("reference magnitude {max_abs:e}")));
    }
    let scale = max_abs.max(1.0);

    let params = fuzz_params();
    let copts = CompileOptions::new(params.clone());
    let mut configs: Vec<CompilerConfig> = if opts.inject.is_some() {
        // Injection targets the loop-aware pipeline; Halo runs every pass.
        vec![CompilerConfig::Halo]
    } else {
        CompilerConfig::ALL.to_vec()
    };
    if opts.tune && opts.inject.is_none() {
        let outcome = halo_core::autotune(&src, &copts).map_err(|e| {
            fail(
                seed,
                Stage::Compile,
                Some("Tuned"),
                format!("autotune: {e}"),
            )
        })?;
        configs.push(CompilerConfig::Tuned(outcome.plan));
    }

    let mut sim_outputs: Vec<(&'static str, Vec<Vec<f64>>)> = Vec::new();
    let mut halo_fn: Option<Function> = None;
    let mut dacapo_fn: Option<Function> = None;
    let mut tuned_fn: Option<Function> = None;
    for &config in &configs {
        // DaCapo cannot compile dynamic trips; it gets the constant twin.
        let cfg_src = if config == CompilerConfig::DaCapo {
            build(spec, false)
        } else {
            src.clone()
        };
        let mut mutation = opts.inject.map(known_bad_mutation);
        let mut hooks = PipelineHooks {
            verify_each_pass: opts.verify_passes,
            mutate_after: match (opts.inject, mutation.as_mut()) {
                (Some(pass), Some(m)) => Some((pass, m.as_mut())),
                _ => None,
            },
            trace: Vec::new(),
        };
        let compiled = compile_with_hooks(&cfg_src, config, &copts, &mut hooks).map_err(|e| {
            let stage = match &e {
                CompileError::PassVerify { pass, .. } => Stage::PassVerify {
                    pass: (*pass).to_string(),
                },
                _ => Stage::Compile,
            };
            fail(seed, stage, Some(config.name()), e.to_string())
        })?;

        // Oracle 2: exact simulation vs the plaintext reference.
        let be = SimBackend::exact(params.clone());
        let out = Executor::new(&be)
            .run(&compiled.function, &inputs)
            .map_err(|e| fail(seed, Stage::Exec, Some(config.name()), e.to_string()))?;
        if out.outputs.len() != want.len() {
            return Err(fail(
                seed,
                Stage::Mismatch,
                Some(config.name()),
                format!(
                    "{} outputs, reference has {}",
                    out.outputs.len(),
                    want.len()
                ),
            ));
        }
        for (k, (got, exp)) in out.outputs.iter().zip(&want).enumerate() {
            let err = rmse(got, exp);
            if exceeds(err, opts.exact_rmse * scale) {
                return Err(fail(
                    seed,
                    Stage::Mismatch,
                    Some(config.name()),
                    format!(
                        "sim output {k}: rmse {err:e} > {:e} (got {:?} want {:?})",
                        opts.exact_rmse * scale,
                        &got[..4.min(got.len())],
                        &exp[..4.min(exp.len())]
                    ),
                ));
            }
        }
        if config == CompilerConfig::Halo {
            halo_fn = Some(compiled.function.clone());
        }
        if config == CompilerConfig::DaCapo {
            dacapo_fn = Some(compiled.function.clone());
        }
        if matches!(config, CompilerConfig::Tuned(_)) {
            tuned_fn = Some(compiled.function.clone());
        }
        sim_outputs.push((config.name(), out.outputs));
    }

    // Oracle 2b: configurations must agree with *each other*, not just
    // each within tolerance of the reference.
    if let Some((base_name, base)) = sim_outputs.first() {
        for (name, outs) in &sim_outputs[1..] {
            for (k, (a, b)) in base.iter().zip(outs).enumerate() {
                let err = rmse(a, b);
                if exceeds(err, 2.0 * opts.exact_rmse * scale) {
                    return Err(fail(
                        seed,
                        Stage::Mismatch,
                        Some(name),
                        format!("output {k}: {base_name} vs {name} rmse {err:e}"),
                    ));
                }
            }
        }
    }

    // Oracle 3: noisy-sim determinism — same seed, bit-identical outputs.
    if let Some(f) = &halo_fn {
        let run_noisy = || {
            let be = SimBackend::with_noise(
                params.clone(),
                halo_ckks::sim::NoiseProfile::default(),
                seed ^ 0x5EED,
            );
            Executor::new(&be).run(f, &inputs)
        };
        let a = run_noisy()
            .map_err(|e| fail(seed, Stage::Exec, Some("halo"), format!("noisy: {e}")))?;
        let b = run_noisy()
            .map_err(|e| fail(seed, Stage::Exec, Some("halo"), format!("noisy: {e}")))?;
        if a.outputs != b.outputs {
            return Err(fail(
                seed,
                Stage::Determinism,
                Some("halo"),
                "identically-seeded noisy runs differ bitwise".into(),
            ));
        }
    }

    // Oracle 4: the toy backend's genuine lattice arithmetic. Its
    // fixed-point encoding (rf_bits = 40 at ring degree 32) only covers
    // modest magnitudes, so larger cases check only sim oracles.
    if opts.check_toy && max_abs <= opts.toy_magnitude_cap {
        for (name, f) in [
            ("dacapo", &dacapo_fn),
            ("halo", &halo_fn),
            ("tuned", &tuned_fn),
        ] {
            let Some(f) = f else { continue };
            let be = ToyBackend::new(params.poly_degree, params.max_level, seed ^ 0x70F);
            let out = Executor::new(&be)
                .run(f, &inputs)
                .map_err(|e| fail(seed, Stage::Exec, Some(name), format!("toy: {e}")))?;
            for (k, (got, exp)) in out.outputs.iter().zip(&want).enumerate() {
                let err = rmse(got, exp);
                if exceeds(err, opts.toy_rmse * scale) {
                    return Err(fail(
                        seed,
                        Stage::Mismatch,
                        Some(name),
                        format!("toy output {k}: rmse {err:e} > {:e}", opts.toy_rmse * scale),
                    ));
                }
            }
        }
    }

    Ok(Verdict::Ok)
}
