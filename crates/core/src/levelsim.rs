//! Pure level/latency simulation: plans the `rescale`/`modswitch` coercions
//! every op needs, without mutating the IR.
//!
//! The materializing scale pass ([`crate::scale`]) and the bootstrap
//! placement DP ([`crate::placement`]) both consume [`plan_op`], so the
//! levels the DP reasons about are *by construction* the levels the emitted
//! code will have — there is no separate model to drift out of sync.
//!
//! ## The waterline discipline
//!
//! Every cipher value is at scale degree 1 (`Rf`) or 2 (`Rf²`, a rescale
//! pending). Multiplication requires degree-1 operands at a common level
//! ≥ 1 and produces degree 2; `rescale` is inserted *lazily*, at the first
//! use that needs degree 1 (EVA-style), so sums of products rescale once.
//! Additions align operand degrees (rescaling the pending side) and levels
//! (modswitching the higher side down). A multiplication whose aligned
//! level would be 0 is an *underflow* — the signal that a bootstrap must be
//! placed upstream.

use std::collections::HashMap;

use halo_ckks::{CostModel, CostedOp};
use halo_ir::func::{Function, OpId, ValueId};
use halo_ir::op::{Op, Opcode};
use halo_ir::types::{CtType, Status};

/// The level every loop-carried variable is floored to at loop boundaries
/// (paper §5.2: "the levels of the loop inputs and outputs are matched to
/// the minimum").
pub const FLOOR_LEVEL: u32 = 0;

/// A multiplicative-depth underflow at `op`: the operand chain ran out of
/// levels and a bootstrap is required upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Underflow {
    /// The op that could not be leveled.
    pub op: OpId,
}

/// One operand coercion: an optional global rescale of the value followed
/// by an optional per-use modswitch down to a target level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coercion {
    /// Which operand slot of the op this applies to.
    pub operand_index: usize,
    /// The (pre-coercion) value being adjusted.
    pub value: ValueId,
    /// Rescale first (degree 2 → 1, level − 1). Global: later uses of the
    /// value see the rescaled version.
    pub rescale: bool,
    /// Then modswitch down to this absolute level (per-use).
    pub modswitch_to: Option<u32>,
}

/// The planned effect of executing one op: operand coercions, result types,
/// and modeled latency (µs) including the coercions.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPlan {
    /// Operand coercions in application order.
    pub coercions: Vec<Coercion>,
    /// Types of the op's results after execution.
    pub result_tys: Vec<CtType>,
    /// Modeled latency of the op plus its coercions.
    pub cost_us: f64,
}

/// Read access to the current type of each value.
pub trait TypeEnv {
    /// The current type of `v`.
    fn get(&self, v: ValueId) -> CtType;
}

/// Computes the coercions, result types, and cost of executing `op` in the
/// environment `env`.
///
/// `For` ops are treated as loop boundaries: cipher inits are coerced to
/// the floor `(level 0, degree 1)` and cipher results emerge there too; the
/// body's internal cost is *not* included (it is identical across placement
/// plans, which is all this function is used to compare).
///
/// # Errors
///
/// Returns [`Underflow`] when a multiplication cannot find level ≥ 1, when
/// a pre-existing `rescale`/`modswitch` is illegal at the operand's level.
#[allow(clippy::too_many_lines)]
pub fn plan_op(
    op_id: OpId,
    op: &Op,
    env: &dyn TypeEnv,
    cost: &CostModel,
    max_level: u32,
) -> Result<StepPlan, Underflow> {
    // Local operand types, tracking intra-op effects of global rescales on
    // duplicated operands.
    let mut tys: Vec<CtType> = op.operands.iter().map(|&v| env.get(v)).collect();
    let mut coercions: Vec<Coercion> = Vec::new();
    let mut cost_us = 0.0;

    // Plans a rescale of operand `i` (global), updating duplicates.
    macro_rules! rescale_operand {
        ($i:expr) => {{
            let i = $i;
            let v = op.operands[i];
            debug_assert_eq!(tys[i].degree, 2);
            debug_assert!(tys[i].level >= 1, "degree-2 values always have level >= 1");
            cost_us += cost.latency_us(CostedOp::Rescale {
                level: tys[i].level,
            });
            let new_ty = CtType::cipher(tys[i].level - 1);
            for (j, &w) in op.operands.iter().enumerate() {
                if w == v {
                    tys[j] = new_ty;
                }
            }
            coercions.push(Coercion {
                operand_index: i,
                value: v,
                rescale: true,
                modswitch_to: None,
            });
        }};
    }

    // Plans a per-use modswitch of operand `i` down to `target`.
    macro_rules! modswitch_operand {
        ($i:expr, $target:expr) => {{
            let i = $i;
            let target: u32 = $target;
            if tys[i].level > target {
                cost_us += cost.modswitch_chain_us(tys[i].level, tys[i].level - target);
                // Attach to an existing coercion for this slot if present.
                if let Some(c) = coercions
                    .iter_mut()
                    .find(|c| c.operand_index == i && c.modswitch_to.is_none())
                {
                    c.modswitch_to = Some(target);
                } else {
                    coercions.push(Coercion {
                        operand_index: i,
                        value: op.operands[i],
                        rescale: false,
                        modswitch_to: Some(target),
                    });
                }
                tys[i].level = target;
            }
        }};
    }

    let result_tys: Vec<CtType> = match &op.opcode {
        Opcode::Input { .. } => vec![env.get(op.results[0])],
        Opcode::Const(_) => {
            cost_us += cost.latency_us(CostedOp::Encode);
            vec![CtType::plain(0)]
        }
        Opcode::Encrypt => {
            // Trivial encryption arrives fresh at the maximum level.
            cost_us += cost.latency_us(CostedOp::Encode);
            vec![CtType::cipher(max_level)]
        }
        Opcode::AddCC | Opcode::SubCC => {
            if tys[0].status == Status::Plain && tys[1].status == Status::Plain {
                vec![CtType::plain(0)]
            } else {
                debug_assert!(tys[0].is_cipher() && tys[1].is_cipher());
                if tys[0].degree != tys[1].degree {
                    let hi = if tys[0].degree == 2 { 0 } else { 1 };
                    rescale_operand!(hi);
                }
                let lv = tys[0].level.min(tys[1].level);
                modswitch_operand!(0, lv);
                modswitch_operand!(1, lv);
                cost_us += cost.latency_us(CostedOp::AddCC { level: lv });
                vec![CtType::cipher(lv).with_degree(tys[0].degree)]
            }
        }
        Opcode::MultCC => {
            if tys[0].status == Status::Plain && tys[1].status == Status::Plain {
                vec![CtType::plain(0)]
            } else {
                for i in 0..2 {
                    if tys[i].degree == 2 {
                        rescale_operand!(i);
                    }
                }
                let lv = tys[0].level.min(tys[1].level);
                if lv < 1 {
                    return Err(Underflow { op: op_id });
                }
                modswitch_operand!(0, lv);
                modswitch_operand!(1, lv);
                cost_us += cost.latency_us(CostedOp::MultCC { level: lv });
                vec![CtType::cipher(lv).with_degree(2)]
            }
        }
        Opcode::AddCP | Opcode::SubCP => {
            if tys[0].status == Status::Plain {
                // Plain–plain leftovers fold at runtime (normalization
                // rewrites them to CC forms; this is belt-and-braces).
                vec![CtType::plain(0)]
            } else {
                cost_us += cost.latency_us(CostedOp::AddCP {
                    level: tys[0].level,
                });
                cost_us += cost.latency_us(CostedOp::Encode);
                vec![tys[0]]
            }
        }
        Opcode::MultCP => {
            if tys[0].status == Status::Plain {
                vec![CtType::plain(0)]
            } else {
                if tys[0].degree == 2 {
                    rescale_operand!(0);
                }
                if tys[0].level < 1 {
                    return Err(Underflow { op: op_id });
                }
                cost_us += cost.latency_us(CostedOp::MultCP {
                    level: tys[0].level,
                });
                cost_us += cost.latency_us(CostedOp::Encode);
                vec![CtType::cipher(tys[0].level).with_degree(2)]
            }
        }
        Opcode::Negate => {
            if tys[0].is_cipher() {
                cost_us += cost.latency_us(CostedOp::Negate {
                    level: tys[0].level,
                });
                vec![tys[0]]
            } else {
                vec![CtType::plain(0)]
            }
        }
        Opcode::Rotate { .. } => {
            if tys[0].is_cipher() {
                cost_us += cost.latency_us(CostedOp::Rotate {
                    level: tys[0].level,
                });
                vec![tys[0]]
            } else {
                vec![CtType::plain(0)]
            }
        }
        Opcode::Rescale => {
            if tys[0].degree != 2 || tys[0].level < 1 {
                return Err(Underflow { op: op_id });
            }
            cost_us += cost.latency_us(CostedOp::Rescale {
                level: tys[0].level,
            });
            vec![CtType::cipher(tys[0].level - 1)]
        }
        Opcode::ModSwitch { down } => {
            if *down == 0 || *down > tys[0].level {
                return Err(Underflow { op: op_id });
            }
            cost_us += cost.modswitch_chain_us(tys[0].level, *down);
            vec![CtType::cipher(tys[0].level - down).with_degree(tys[0].degree)]
        }
        Opcode::Bootstrap { target } => {
            debug_assert!(*target >= 1 && *target <= max_level);
            if tys[0].degree == 2 {
                rescale_operand!(0);
            }
            cost_us += cost.latency_us(CostedOp::Bootstrap { target: *target });
            vec![CtType::cipher(*target)]
        }
        Opcode::For { .. } => {
            // Loop boundary: cipher inits floor to (0, 1); results emerge
            // there. Body cost excluded (see function docs).
            for i in 0..op.operands.len() {
                if tys[i].is_cipher() {
                    if tys[i].degree == 2 {
                        rescale_operand!(i);
                    }
                    modswitch_operand!(i, FLOOR_LEVEL);
                }
            }
            op.results
                .iter()
                .map(|&r| {
                    if env.get(r).is_cipher() {
                        CtType::cipher(FLOOR_LEVEL)
                    } else {
                        CtType::plain(0)
                    }
                })
                .collect()
        }
        Opcode::Yield | Opcode::Return => Vec::new(),
    };

    Ok(StepPlan {
        coercions,
        result_tys,
        cost_us,
    })
}

/// A pure type environment backed by the function's stored types plus an
/// override map.
#[derive(Debug, Clone)]
pub struct SimTypes<'f> {
    f: &'f Function,
    map: HashMap<ValueId, CtType>,
}

impl<'f> SimTypes<'f> {
    /// Creates an environment reading base types from `f`.
    #[must_use]
    pub fn new(f: &'f Function) -> SimTypes<'f> {
        SimTypes {
            f,
            map: HashMap::new(),
        }
    }

    /// Overrides the type of `v`.
    pub fn set(&mut self, v: ValueId, ty: CtType) {
        self.map.insert(v, ty);
    }

    /// Applies a step plan's effects: global rescales and result types.
    pub fn apply(&mut self, op: &Op, plan: &StepPlan) {
        for c in &plan.coercions {
            if c.rescale {
                let t = self.get(c.value);
                self.set(c.value, CtType::cipher(t.level - 1));
            }
        }
        for (&r, &t) in op.results.iter().zip(&plan.result_tys) {
            self.set(r, t);
        }
    }
}

impl TypeEnv for SimTypes<'_> {
    fn get(&self, v: ValueId) -> CtType {
        self.map.get(&v).copied().unwrap_or_else(|| self.f.ty(v))
    }
}

/// Outcome of simulating a contiguous op range.
#[derive(Debug, Clone)]
pub struct RangeSim {
    /// `cum_cost[k]` = total modeled cost of the first `k` simulated ops.
    pub cum_cost: Vec<f64>,
    /// Index (relative to the start) of the first op that underflowed, or
    /// `None` if the whole range was feasible.
    pub underflow_at: Option<usize>,
}

/// Simulates ops `block[start..]` in `types`, accumulating cost until the
/// end or the first underflow.
#[must_use]
pub fn sim_range(
    f: &Function,
    ops: &[OpId],
    types: &mut SimTypes<'_>,
    cost: &CostModel,
    max_level: u32,
) -> RangeSim {
    let mut cum = Vec::with_capacity(ops.len() + 1);
    cum.push(0.0);
    let mut total = 0.0;
    for (k, &op_id) in ops.iter().enumerate() {
        let op = f.op(op_id);
        match plan_op(op_id, op, types, cost, max_level) {
            Ok(plan) => {
                total += plan.cost_us;
                types.apply(op, &plan);
                cum.push(total);
            }
            Err(_) => {
                return RangeSim {
                    cum_cost: cum,
                    underflow_at: Some(k),
                };
            }
        }
    }
    RangeSim {
        cum_cost: cum,
        underflow_at: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::FunctionBuilder;

    fn cost() -> CostModel {
        CostModel::new()
    }

    #[test]
    fn mult_chain_consumes_levels_lazily() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let m1 = b.mul(x, x); // (L, 2)
        let m2 = b.mul(m1, m1); // rescale m1 -> (L-1,1); mult -> (L-1,2)
        b.ret(&[m2]);
        let f = b.finish();
        let mut types = SimTypes::new(&f);
        types.set(x, CtType::cipher(16));
        let ops = f.block(f.entry).ops.clone();
        let sim = sim_range(&f, &ops, &mut types, &cost(), 16);
        assert_eq!(sim.underflow_at, None);
        assert_eq!(types.get(m1), CtType::cipher(15)); // globally rescaled
        assert_eq!(types.get(m2), CtType::cipher(15).with_degree(2));
    }

    #[test]
    fn depth_budget_is_exactly_max_level() {
        // A chain of D squarings needs D levels; from level L the L-th
        // mult succeeds and the (L+1)-th underflows (depth_limit = L, §6.2).
        for budget in [2u32, 4, 16] {
            let mut b = FunctionBuilder::new("t", 8);
            let x = b.input_cipher("x");
            let mut v = x;
            for _ in 0..budget + 1 {
                v = b.mul(v, v);
            }
            b.ret(&[v]);
            let f = b.finish();
            let mut types = SimTypes::new(&f);
            types.set(x, CtType::cipher(budget));
            let ops = f.block(f.entry).ops.clone();
            let sim = sim_range(&f, &ops, &mut types, &cost(), budget);
            // ops: input, then budget+1 mults, return. The mult at index
            // 1 + budget (0-based within ops) is the first infeasible one.
            assert_eq!(sim.underflow_at, Some(1 + budget as usize));
        }
    }

    #[test]
    fn add_aligns_degrees_and_levels() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let m = b.mul(x, x); // (10, 2)
        let s = b.add(m, y); // y at (7,1): rescale m -> (9,1), modswitch to 7
        b.ret(&[s]);
        let f = b.finish();
        let mut types = SimTypes::new(&f);
        types.set(x, CtType::cipher(10));
        types.set(y, CtType::cipher(7));
        let ops = f.block(f.entry).ops.clone();
        let sim = sim_range(&f, &ops, &mut types, &cost(), 16);
        assert_eq!(sim.underflow_at, None);
        assert_eq!(types.get(s), CtType::cipher(7));
    }

    #[test]
    fn sum_of_products_rescales_lazily_at_degree_2() {
        // a*b + c*d: both products stay degree 2 through the add.
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let p1 = b.mul(x, y);
        let p2 = b.mul(y, y);
        let s = b.add(p1, p2);
        b.ret(&[s]);
        let f = b.finish();
        let mut types = SimTypes::new(&f);
        types.set(x, CtType::cipher(10));
        types.set(y, CtType::cipher(10));
        let ops = f.block(f.entry).ops.clone();
        let sim = sim_range(&f, &ops, &mut types, &cost(), 16);
        assert_eq!(sim.underflow_at, None);
        assert_eq!(
            types.get(s),
            CtType::cipher(10).with_degree(2),
            "no rescale inserted"
        );
    }

    #[test]
    fn plain_arithmetic_is_free_and_unleveled() {
        let mut b = FunctionBuilder::new("t", 8);
        let p = b.const_splat(2.0);
        let q = b.const_splat(3.0);
        let m = b.mul(p, q);
        b.ret(&[m]);
        let f = b.finish();
        let mut types = SimTypes::new(&f);
        let ops = f.block(f.entry).ops.clone();
        let sim = sim_range(&f, &ops, &mut types, &cost(), 16);
        assert_eq!(sim.underflow_at, None);
        assert_eq!(types.get(m).status, Status::Plain);
        // Only the two encodes cost anything.
        assert!(sim.cum_cost.last().unwrap() < &50.0);
    }

    #[test]
    fn squaring_uses_one_rescale_for_duplicated_operand() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let m = b.mul(x, x); // (10, 2)
        let sq = b.mul(m, m); // m duplicated: exactly one rescale coercion
        b.ret(&[sq]);
        let f = b.finish();
        let mut types = SimTypes::new(&f);
        types.set(x, CtType::cipher(10));
        // Plan the second mult directly.
        let ops = f.block(f.entry).ops.clone();
        let first = sim_range(&f, &ops[..2], &mut types, &cost(), 16);
        assert_eq!(first.underflow_at, None);
        let second_op = ops[2];
        let plan = plan_op(second_op, f.op(second_op), &types, &cost(), 16).unwrap();
        let rescales = plan.coercions.iter().filter(|c| c.rescale).count();
        assert_eq!(rescales, 1);
        assert_eq!(plan.result_tys[0], CtType::cipher(9).with_degree(2));
    }

    #[test]
    fn for_op_floors_cipher_inits() {
        use halo_ir::op::TripCount;
        let mut b = FunctionBuilder::new("t", 8);
        let w = b.input_cipher("w");
        let r = b.for_loop(TripCount::Constant(2), &[w], 4, |b, a| {
            vec![b.mul(a[0], a[0])]
        });
        b.ret(&r);
        let f = b.finish();
        let loop_op = f.loops_in_block(f.entry)[0];
        let mut types = SimTypes::new(&f);
        types.set(w, CtType::cipher(9));
        let plan = plan_op(loop_op, f.op(loop_op), &types, &cost(), 16).unwrap();
        assert_eq!(plan.coercions.len(), 1);
        assert_eq!(plan.coercions[0].modswitch_to, Some(FLOOR_LEVEL));
        assert_eq!(plan.result_tys[0], CtType::cipher(FLOOR_LEVEL));
    }
}
