//! Level-aware loop unrolling (paper §6.2, Solution B-2).
//!
//! When a loop body consumes fewer levels than a bootstrap restores, the
//! restored levels are wasted: the type-matched loop modswitches them away
//! at the iteration boundary. Unrolling by
//! `factor = ⌊depth_limit / depth_max⌋` packs `factor` iterations of work
//! between consecutive bootstraps, where `depth_max` is the body's
//! multiplicative depth (def-use chain analysis) and `depth_limit` is the
//! level budget: `L`, minus 2 when packing will add its own `multcp` on
//! each side of the body.
//!
//! A dynamic trip count `n` splits into a main loop of `⌊n/factor⌋`
//! iterations and an epilogue loop of `n mod factor` iterations — both
//! still symbolic, so the program need not be recompiled when `n` changes
//! (this is exactly what the DaCapo baseline cannot do).

use std::collections::HashMap;

use halo_ir::analysis::max_mult_depth;
use halo_ir::func::{BlockId, Function, OpId};
use halo_ir::op::{Opcode, TripCount};
use halo_ir::subst::{clone_body_ops, deep_clone_block};

use crate::pack::packable_indices;

/// Unrolls every profitable loop. `assume_packing` reserves two levels of
/// the budget for the pack/unpack multiplications when the loop will also
/// be packed. Returns the number of loops unrolled.
pub fn unroll_loops(f: &mut Function, max_level: u32, assume_packing: bool) -> usize {
    let mut count = 0;
    unroll_in_block(f, f.entry, max_level, assume_packing, &mut count);
    count
}

fn unroll_in_block(
    f: &mut Function,
    block: BlockId,
    max_level: u32,
    assume_packing: bool,
    count: &mut usize,
) {
    let mut i = 0;
    while i < f.block(block).ops.len() {
        let op_id = f.block(block).ops[i];
        if let Opcode::For { body, .. } = f.op(op_id).opcode {
            unroll_in_block(f, body, max_level, assume_packing, count);
            if let Some(factor) = unroll_factor(f, op_id, max_level, assume_packing) {
                unroll_one(f, block, op_id, factor);
                *count += 1;
            }
        }
        i += 1;
    }
}

/// Unrolls every structurally eligible loop by an explicit `factor` — the
/// autotuner's unroll knob, bypassing the paper's profitability formula.
/// Eligibility matches [`unroll_factor`]'s structural preconditions
/// (epilogue loops and already-divided dynamic trips are never re-split);
/// constant trips clamp the factor to the trip count, and an effective
/// factor ≤ 1 is a no-op. Returns the number of loops unrolled.
pub fn unroll_loops_with_factor(f: &mut Function, factor: u64) -> usize {
    if factor <= 1 {
        return 0;
    }
    let mut count = 0;
    factor_in_block(f, f.entry, factor, &mut count);
    count
}

fn factor_in_block(f: &mut Function, block: BlockId, factor: u64, count: &mut usize) {
    // Snapshot the loops first: unroll_one inserts epilogue loops right
    // after their main loop, and a freshly minted epilogue must not be
    // unrolled again in the same sweep.
    let loops = f.loops_in_block(block);
    for op_id in loops {
        let body = f.for_body(op_id);
        factor_in_block(f, body, factor, count);
        let eff = match &f.op(op_id).opcode {
            Opcode::For { trip, .. } => match trip {
                TripCount::DynamicRem { .. } => 0,
                TripCount::Dynamic { div, .. } => {
                    if *div == 1 {
                        factor
                    } else {
                        0
                    }
                }
                TripCount::Constant(n) => factor.min(*n),
            },
            _ => 0,
        };
        if eff > 1 {
            unroll_one(f, block, op_id, eff);
            *count += 1;
        }
    }
}

/// The paper's unroll-factor formula, or `None` when unrolling is not
/// profitable (`factor ≤ 1`) or not applicable.
#[must_use]
pub fn unroll_factor(
    f: &Function,
    op_id: OpId,
    max_level: u32,
    assume_packing: bool,
) -> Option<u64> {
    let Opcode::For { body, trip, .. } = &f.op(op_id).opcode else {
        return None;
    };
    // Epilogue loops (already divided trips) are never re-unrolled.
    if matches!(trip, TripCount::DynamicRem { .. }) {
        return None;
    }
    if let TripCount::Dynamic { div, .. } = trip {
        if *div != 1 {
            return None;
        }
    }
    let depth_max = u64::from(max_mult_depth(f, *body));
    if depth_max == 0 {
        return None;
    }
    let will_pack = assume_packing && packable_indices(f, op_id).is_some();
    let depth_limit = u64::from(max_level) - if will_pack { 2 } else { 0 };
    let mut factor = depth_limit / depth_max;
    if let TripCount::Constant(n) = trip {
        factor = factor.min(*n);
    }
    (factor > 1).then_some(factor)
}

/// Replaces the loop with a main loop whose body is `factor` concatenated
/// copies (trip `⌊n/factor⌋`) followed by an epilogue loop with the
/// original body (trip `n mod factor`).
fn unroll_one(f: &mut Function, block: BlockId, op_id: OpId, factor: u64) {
    let (old_body, trip, num_elems) = match &f.op(op_id).opcode {
        Opcode::For {
            body,
            trip,
            num_elems,
        } => (*body, trip.clone(), *num_elems),
        _ => unreachable!(),
    };
    let (main_trip, epi_trip) = trip.split_for_unroll(factor);
    let old_args = f.block(old_body).args.clone();

    // Main body: `factor` copies chained through the carried values.
    let new_body = f.add_block();
    let mut carried: Vec<_> = old_args
        .iter()
        .map(|&a| {
            let ty = f.ty(a);
            let name = f.value(a).name.clone();
            f.add_block_arg(new_body, ty, name)
        })
        .collect();
    for _ in 0..factor {
        let mut map: HashMap<_, _> = old_args
            .iter()
            .copied()
            .zip(carried.iter().copied())
            .collect();
        let at = f.block(new_body).ops.len();
        carried = clone_body_ops(f, old_body, new_body, at, &mut map);
    }
    f.push_op(new_body, Opcode::Yield, carried, &[]);

    // Swap the loop's body and trip in place (operands/results unchanged).
    if let Opcode::For { trip, body, .. } = &mut f.op_mut(op_id).opcode {
        *trip = main_trip;
        *body = new_body;
    }

    // Epilogue: original body, remainder trip, fed by the main loop.
    let needs_epilogue = match &epi_trip {
        TripCount::Constant(0) => false,
        TripCount::Constant(_) | TripCount::DynamicRem { .. } => true,
        TripCount::Dynamic { .. } => true,
    };
    if needs_epilogue {
        let mut map = HashMap::new();
        let epi_body = deep_clone_block(f, old_body, &mut map);
        let main_results = f.op(op_id).results.clone();
        let result_tys: Vec<_> = main_results.iter().map(|&r| f.ty(r)).collect();
        let pos = f.position_in_block(block, op_id).expect("loop in block");
        let epi = f.insert_op(
            block,
            pos + 1,
            Opcode::For {
                trip: epi_trip,
                body: epi_body,
                num_elems,
            },
            main_results.clone(),
            &result_tys,
        );
        let epi_results = f.op(epi).results.clone();
        for (&old, &new) in main_results.iter().zip(&epi_results) {
            f.replace_uses(old, new, Some(epi));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::verify::verify_traced;
    use halo_ir::FunctionBuilder;

    /// Depth-5 body over one carried var (cipher init, no peel needed).
    fn depth5_loop(trip: TripCount) -> Function {
        let mut b = FunctionBuilder::new("t", 16);
        let x = b.input_cipher("x");
        let w0 = b.input_cipher("w0");
        let r = b.for_loop(trip, &[w0], 4, |b, args| {
            let mut v = args[0];
            for _ in 0..5 {
                v = b.mul(v, x);
            }
            vec![v]
        });
        b.ret(&r);
        b.finish()
    }

    #[test]
    fn factor_matches_paper_formula() {
        let f = depth5_loop(TripCount::dynamic("n"));
        let op = f.loops_in_block(f.entry)[0];
        // depth_max = 5, L = 16 → ⌊16/5⌋ = 3; with packing reserve,
        // ⌊14/5⌋ = 2 — but a single carried var never packs, so 3.
        assert_eq!(unroll_factor(&f, op, 16, false), Some(3));
        assert_eq!(unroll_factor(&f, op, 16, true), Some(3));
        // Deep body: factor 1 → no unroll.
        assert_eq!(unroll_factor(&f, op, 5, false), None);
    }

    #[test]
    fn dynamic_loop_splits_into_main_and_epilogue() {
        let mut f = depth5_loop(TripCount::dynamic("n"));
        assert_eq!(unroll_loops(&mut f, 16, false), 1);
        verify_traced(&f).unwrap();
        let loops = f.loops_in_block(f.entry);
        assert_eq!(loops.len(), 2, "main + epilogue");
        let trips: Vec<String> = loops
            .iter()
            .map(|&l| match &f.op(l).opcode {
                Opcode::For { trip, .. } => trip.to_string(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(trips, vec!["(%n)/3", "(%n)%3"]);
        // Main body has 3 copies of the depth-5 chain = 15 mults.
        let main_body = f.for_body(loops[0]);
        let mults = f
            .block(main_body)
            .ops
            .iter()
            .filter(|&&o| f.op(o).opcode.is_mult())
            .count();
        assert_eq!(mults, 15);
        // Epilogue keeps the original 5.
        let epi_body = f.for_body(loops[1]);
        let epi_mults = f
            .block(epi_body)
            .ops
            .iter()
            .filter(|&&o| f.op(o).opcode.is_mult())
            .count();
        assert_eq!(epi_mults, 5);
    }

    #[test]
    fn constant_trip_divisible_has_no_epilogue() {
        let mut f = depth5_loop(TripCount::Constant(9));
        assert_eq!(unroll_loops(&mut f, 16, false), 1);
        let loops = f.loops_in_block(f.entry);
        assert_eq!(loops.len(), 1);
        if let Opcode::For { trip, .. } = &f.op(loops[0]).opcode {
            assert_eq!(*trip, TripCount::Constant(3));
        }
    }

    #[test]
    fn constant_trip_with_remainder_gets_constant_epilogue() {
        let mut f = depth5_loop(TripCount::Constant(10));
        assert_eq!(unroll_loops(&mut f, 16, false), 1);
        let loops = f.loops_in_block(f.entry);
        assert_eq!(loops.len(), 2);
        if let Opcode::For { trip, .. } = &f.op(loops[1]).opcode {
            assert_eq!(*trip, TripCount::Constant(1));
        }
        verify_traced(&f).unwrap();
    }

    #[test]
    fn explicit_factor_overrides_the_formula_and_clamps_to_constant_trips() {
        // The formula would pick 3 (⌊16/5⌋); the explicit knob forces 2.
        let mut f = depth5_loop(TripCount::dynamic("n"));
        assert_eq!(unroll_loops_with_factor(&mut f, 2), 1);
        verify_traced(&f).unwrap();
        let loops = f.loops_in_block(f.entry);
        let trips: Vec<String> = loops
            .iter()
            .map(|&l| match &f.op(l).opcode {
                Opcode::For { trip, .. } => trip.to_string(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(trips, vec!["(%n)/2", "(%n)%2"]);

        // A constant trip clamps the factor; trip 3 with factor 8 unrolls
        // fully into a single-trip loop.
        let mut f = depth5_loop(TripCount::Constant(3));
        assert_eq!(unroll_loops_with_factor(&mut f, 8), 1);
        verify_traced(&f).unwrap();
        let loops = f.loops_in_block(f.entry);
        assert_eq!(loops.len(), 1);
        if let Opcode::For { trip, .. } = &f.op(loops[0]).opcode {
            assert_eq!(*trip, TripCount::Constant(1));
        }

        // Factors of 0 and 1 are no-ops.
        let mut f = depth5_loop(TripCount::dynamic("n"));
        assert_eq!(unroll_loops_with_factor(&mut f, 1), 0);
        assert_eq!(unroll_loops_with_factor(&mut f, 0), 0);
        // A fresh epilogue is never re-unrolled in the same sweep.
        let mut f = depth5_loop(TripCount::dynamic("n"));
        unroll_loops_with_factor(&mut f, 3);
        let loops = f.loops_in_block(f.entry);
        assert_eq!(loops.len(), 2, "main + one epilogue, not a cascade");
    }

    #[test]
    fn deep_body_is_left_alone() {
        // depth 20 > L: no unrolling (PCA's case in §7.4).
        let mut b = FunctionBuilder::new("t", 16);
        let x = b.input_cipher("x");
        let w0 = b.input_cipher("w0");
        let r = b.for_loop(TripCount::dynamic("n"), &[w0], 4, |b, args| {
            let mut v = args[0];
            for _ in 0..20 {
                v = b.mul(v, x);
            }
            vec![v]
        });
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(unroll_loops(&mut f, 16, false), 0);
    }

    #[test]
    fn unrolled_loop_levels_and_counts_bootstraps_per_unrolled_iteration() {
        use crate::config::CompileOptions;
        use crate::scale::assign_levels;
        use halo_ckks::CkksParams;
        let mut f = depth5_loop(TripCount::dynamic("n"));
        unroll_loops(&mut f, 16, false);
        let mut opts = CompileOptions::new(CkksParams::test_small());
        opts.params.poly_degree = 32;
        assign_levels(&mut f, &opts).unwrap();
        // One head bootstrap in the main body, one in the epilogue body.
        assert_eq!(f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. })), 2);
    }
}
