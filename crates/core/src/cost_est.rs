//! Static whole-program cost estimation over typed IR.
//!
//! Walks the compiled function pricing every op at its operand level with
//! the calibrated cost model, multiplying loop bodies by their trip counts
//! (dynamic trips are assumed to run `assumed_trip` iterations — the
//! paper's evaluation uses 40). The pipeline uses this to make the packing
//! decision cost-aware: packing trades `m` head bootstraps for one, but on
//! deep bodies the two extra multiplicative levels can force extra in-body
//! resets that outweigh the saving (the paper observes exactly this on
//! K-means, §7.1). The autotuner (`autotune`) uses the same estimate as
//! its search oracle.
//!
//! Rotation fan-outs — same-source `rotate` ops within one block — are
//! priced at the amortized hoisted-batch cost, mirroring the executor's
//! rotation-hoisting peephole, so plans that concentrate rotations (e.g.
//! unrolled bodies) are not over-charged relative to how they execute.

use std::collections::HashMap;

use halo_ckks::{CostModel, CostedOp};
use halo_ir::func::{BlockId, Function, OpId, ValueId};
use halo_ir::op::{Opcode, TripCount};
use halo_ir::types::Status;

/// Estimated execution latency (µs) of a typed function, assuming dynamic
/// trip counts run `assumed_trip` iterations.
#[must_use]
pub fn estimate_cost_us(f: &Function, assumed_trip: u64) -> f64 {
    let cost = CostModel::new();
    block_cost(f, f.entry, assumed_trip, &cost)
}

/// Admissible lower bound (µs) on the modeled cost of **any** typed
/// completion of a traced (pre-level) program.
///
/// Level assignment only *raises* op levels (the model's per-op latency is
/// monotone in level, floored at level 1) and *inserts* management ops
/// (rescale / modswitch / bootstrap), and splitting a rotation fan-out
/// with an inserted rescale only reduces amortization — so pricing every
/// compute op at level 1 with maximal fan-out amortization and zero
/// management cost can never exceed the estimate of the compiled program.
/// The branch-and-bound tuner uses this to discard whole plan prefixes
/// without running level assignment.
#[must_use]
pub fn traced_floor_us(f: &Function, assumed_trip: u64) -> f64 {
    let cost = CostModel::new();
    floor_block(f, f.entry, assumed_trip, &cost)
}

fn floor_block(f: &Function, block: BlockId, assumed: u64, cost: &CostModel) -> f64 {
    let fanouts = rotation_fanout_sizes(f, block);
    let mut total = 0.0;
    for &op_id in &f.block(block).ops {
        let op = f.op(op_id);
        let cipher = |i: usize| f.ty(op.operands[i]).status == Status::Cipher;
        total += match &op.opcode {
            Opcode::For { trip, body, .. } => {
                floor_block(f, *body, assumed, cost) * trip_estimate(trip, assumed) as f64
            }
            Opcode::MultCC if cipher(0) => cost.latency_us(CostedOp::MultCC { level: 1 }),
            Opcode::MultCP => {
                cost.latency_us(CostedOp::MultCP { level: 1 }) + cost.latency_us(CostedOp::Encode)
            }
            Opcode::AddCC | Opcode::SubCC if cipher(0) => {
                cost.latency_us(CostedOp::AddCC { level: 1 })
            }
            Opcode::AddCP | Opcode::SubCP => {
                cost.latency_us(CostedOp::AddCP { level: 1 }) + cost.latency_us(CostedOp::Encode)
            }
            Opcode::Negate if cipher(0) => cost.latency_us(CostedOp::Negate { level: 1 }),
            Opcode::Rotate { .. } if cipher(0) => match fanouts.get(&op_id) {
                Some(&k) if k > 0 => cost.rotate_batch_us(1, k),
                Some(_) => 0.0,
                None => cost.latency_us(CostedOp::Rotate { level: 1 }),
            },
            Opcode::Const(_) | Opcode::Encrypt => cost.latency_us(CostedOp::Encode),
            // Management ops are absent from traced programs; anything a
            // later pass inserts only raises the true cost above the floor.
            _ => 0.0,
        };
    }
    total
}

fn trip_estimate(trip: &TripCount, assumed: u64) -> u64 {
    match trip {
        TripCount::Constant(n) => *n,
        TripCount::Dynamic { add, div, .. } => {
            let num = assumed as i64 + add;
            if num <= 0 {
                0
            } else {
                num as u64 / div
            }
        }
        TripCount::DynamicRem { add, div, .. } => {
            let num = assumed as i64 + add;
            if num <= 0 {
                0
            } else {
                num as u64 % div
            }
        }
    }
}

/// Rotation fan-out group sizes for one block, mirroring the executor's
/// hoisting peephole (`rotation_fanouts` in `halo-runtime`): `rotate` ops
/// sharing a source value hoist one digit decomposition, so the whole
/// group prices at the amortized [`CostModel::rotate_batch_us`] cost. The
/// map carries the group size on the group's *first* op (which pays the
/// whole batch); later members are free. Lone rotations are absent.
fn rotation_fanout_sizes(f: &Function, block: BlockId) -> HashMap<OpId, u32> {
    let mut by_src: HashMap<ValueId, Vec<OpId>> = HashMap::new();
    for &id in &f.block(block).ops {
        let op = f.op(id);
        if matches!(op.opcode, Opcode::Rotate { .. }) {
            if let Some(&src) = op.operands.first() {
                if f.ty(src).status == Status::Cipher {
                    by_src.entry(src).or_default().push(id);
                }
            }
        }
    }
    let mut sizes = HashMap::new();
    for g in by_src.into_values().filter(|g| g.len() >= 2) {
        sizes.insert(g[0], g.len() as u32);
        for &rest in &g[1..] {
            sizes.insert(rest, 0);
        }
    }
    sizes
}

fn block_cost(f: &Function, block: BlockId, assumed: u64, cost: &CostModel) -> f64 {
    let fanouts = rotation_fanout_sizes(f, block);
    let mut total = 0.0;
    for &op_id in &f.block(block).ops {
        let op = f.op(op_id);
        let level = |i: usize| f.ty(op.operands[i]).level;
        let cipher = |i: usize| f.ty(op.operands[i]).status == Status::Cipher;
        total += match &op.opcode {
            Opcode::For { trip, body, .. } => {
                block_cost(f, *body, assumed, cost) * trip_estimate(trip, assumed) as f64
            }
            Opcode::MultCC if cipher(0) => cost.latency_us(CostedOp::MultCC { level: level(0) }),
            Opcode::MultCP => {
                cost.latency_us(CostedOp::MultCP { level: level(0) })
                    + cost.latency_us(CostedOp::Encode)
            }
            Opcode::AddCC | Opcode::SubCC if cipher(0) => {
                cost.latency_us(CostedOp::AddCC { level: level(0) })
            }
            Opcode::AddCP | Opcode::SubCP => {
                cost.latency_us(CostedOp::AddCP { level: level(0) })
                    + cost.latency_us(CostedOp::Encode)
            }
            Opcode::Negate if cipher(0) => cost.latency_us(CostedOp::Negate { level: level(0) }),
            Opcode::Rotate { .. } if cipher(0) => match fanouts.get(&op_id) {
                // First member of a fan-out pays the whole amortized batch;
                // the remaining members already hoisted their decompose.
                Some(&k) if k > 0 => cost.rotate_batch_us(level(0), k),
                Some(_) => 0.0,
                None => cost.latency_us(CostedOp::Rotate { level: level(0) }),
            },
            Opcode::Rescale => cost.latency_us(CostedOp::Rescale { level: level(0) }),
            Opcode::ModSwitch { down } => cost.modswitch_chain_us(level(0), *down),
            Opcode::Bootstrap { target } => {
                cost.latency_us(CostedOp::Bootstrap { target: *target })
            }
            Opcode::Const(_) | Opcode::Encrypt => cost.latency_us(CostedOp::Encode),
            _ => 0.0,
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompileOptions;
    use crate::scale::assign_levels;
    use halo_ckks::CkksParams;
    use halo_ir::FunctionBuilder;

    #[test]
    fn loop_cost_scales_with_assumed_trips() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let w = b.input_cipher("w");
        let r = b.for_loop(
            TripCount::dynamic("n"),
            &[w],
            4,
            |b, a| vec![b.mul(a[0], x)],
        );
        b.ret(&r);
        let mut f = b.finish();
        assign_levels(&mut f, &CompileOptions::new(CkksParams::test_small())).unwrap();
        let c10 = estimate_cost_us(&f, 10);
        let c40 = estimate_cost_us(&f, 40);
        assert!(c40 > 3.5 * c10 && c40 < 4.5 * c10, "{c10} vs {c40}");
    }

    #[test]
    fn rotation_fanouts_price_at_the_amortized_batch_cost() {
        // Four rotations of one source in one block hoist a shared digit
        // decomposition at execution time (the PR 3 peephole); the static
        // estimate must price them the same way or the search is biased
        // against rotation-heavy (unrolled) plans. A chained variant with
        // four *distinct* sources is the control: same op mix, no fan-out.
        let build = |fanout: bool| {
            let mut b = FunctionBuilder::new("t", 8);
            let x = b.input_cipher("x");
            let mut acc = b.input_cipher("acc");
            let mut src = x;
            for k in 0..4 {
                let r = b.rotate(src, k + 1);
                if !fanout {
                    src = r; // chain: every rotation gets its own source
                }
                acc = b.add(acc, r);
            }
            b.ret(&[acc]);
            let mut f = b.finish();
            assign_levels(&mut f, &CompileOptions::new(CkksParams::test_small())).unwrap();
            f
        };
        let fanned = build(true);
        let chained = build(false);
        let est_fan = estimate_cost_us(&fanned, 1);
        let est_chain = estimate_cost_us(&chained, 1);
        // Rotations preserve their operand level, so all eight rotations
        // across the two programs run at one common level.
        let mut level = None;
        fanned.walk_ops(|_, id| {
            if level.is_none() && matches!(fanned.op(id).opcode, Opcode::Rotate { .. }) {
                level = Some(fanned.ty(fanned.op(id).operands[0]).level);
            }
        });
        let level = level.expect("program has rotations");
        let cost = halo_ckks::CostModel::new();
        let per_rot = cost.latency_us(halo_ckks::CostedOp::Rotate { level });
        let expected_saving = 4.0 * per_rot - cost.rotate_batch_us(level, 4);
        assert!(expected_saving > 0.0);
        assert!(
            (est_chain - est_fan - expected_saving).abs() < 1e-6,
            "fan-out saving must equal the hoisted decomposes: \
             chain {est_chain} vs fan {est_fan}, expected {expected_saving}"
        );
    }

    #[test]
    fn bootstraps_dominate_the_estimate() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let w = b.input_cipher("w");
        let r = b.for_loop(
            TripCount::dynamic("n"),
            &[w],
            4,
            |b, a| vec![b.mul(a[0], x)],
        );
        b.ret(&r);
        let mut f = b.finish();
        assign_levels(&mut f, &CompileOptions::new(CkksParams::test_small())).unwrap();
        let total = estimate_cost_us(&f, 40);
        let boots = f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. })) as f64;
        let boot_us = boots * 40.0 * 463_171.0;
        assert!(boot_us / total > 0.9, "bootstraps should dominate: {total}");
    }
}
