//! Static whole-program cost estimation over typed IR.
//!
//! Walks the compiled function pricing every op at its operand level with
//! the calibrated cost model, multiplying loop bodies by their trip counts
//! (dynamic trips are assumed to run `assumed_trip` iterations — the
//! paper's evaluation uses 40). The pipeline uses this to make the packing
//! decision cost-aware: packing trades `m` head bootstraps for one, but on
//! deep bodies the two extra multiplicative levels can force extra in-body
//! resets that outweigh the saving (the paper observes exactly this on
//! K-means, §7.1).

use halo_ckks::{CostModel, CostedOp};
use halo_ir::func::{BlockId, Function};
use halo_ir::op::{Opcode, TripCount};
use halo_ir::types::Status;

/// Estimated execution latency (µs) of a typed function, assuming dynamic
/// trip counts run `assumed_trip` iterations.
#[must_use]
pub fn estimate_cost_us(f: &Function, assumed_trip: u64) -> f64 {
    let cost = CostModel::new();
    block_cost(f, f.entry, assumed_trip, &cost)
}

fn trip_estimate(trip: &TripCount, assumed: u64) -> u64 {
    match trip {
        TripCount::Constant(n) => *n,
        TripCount::Dynamic { add, div, .. } => {
            let num = assumed as i64 + add;
            if num <= 0 {
                0
            } else {
                num as u64 / div
            }
        }
        TripCount::DynamicRem { add, div, .. } => {
            let num = assumed as i64 + add;
            if num <= 0 {
                0
            } else {
                num as u64 % div
            }
        }
    }
}

fn block_cost(f: &Function, block: BlockId, assumed: u64, cost: &CostModel) -> f64 {
    let mut total = 0.0;
    for &op_id in &f.block(block).ops {
        let op = f.op(op_id);
        let level = |i: usize| f.ty(op.operands[i]).level;
        let cipher = |i: usize| f.ty(op.operands[i]).status == Status::Cipher;
        total += match &op.opcode {
            Opcode::For { trip, body, .. } => {
                block_cost(f, *body, assumed, cost) * trip_estimate(trip, assumed) as f64
            }
            Opcode::MultCC if cipher(0) => cost.latency_us(CostedOp::MultCC { level: level(0) }),
            Opcode::MultCP => {
                cost.latency_us(CostedOp::MultCP { level: level(0) })
                    + cost.latency_us(CostedOp::Encode)
            }
            Opcode::AddCC | Opcode::SubCC if cipher(0) => {
                cost.latency_us(CostedOp::AddCC { level: level(0) })
            }
            Opcode::AddCP | Opcode::SubCP => {
                cost.latency_us(CostedOp::AddCP { level: level(0) })
                    + cost.latency_us(CostedOp::Encode)
            }
            Opcode::Negate if cipher(0) => cost.latency_us(CostedOp::Negate { level: level(0) }),
            Opcode::Rotate { .. } if cipher(0) => {
                cost.latency_us(CostedOp::Rotate { level: level(0) })
            }
            Opcode::Rescale => cost.latency_us(CostedOp::Rescale { level: level(0) }),
            Opcode::ModSwitch { down } => cost.modswitch_chain_us(level(0), *down),
            Opcode::Bootstrap { target } => {
                cost.latency_us(CostedOp::Bootstrap { target: *target })
            }
            Opcode::Const(_) | Opcode::Encrypt => cost.latency_us(CostedOp::Encode),
            _ => 0.0,
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompileOptions;
    use crate::scale::assign_levels;
    use halo_ckks::CkksParams;
    use halo_ir::FunctionBuilder;

    #[test]
    fn loop_cost_scales_with_assumed_trips() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let w = b.input_cipher("w");
        let r = b.for_loop(
            TripCount::dynamic("n"),
            &[w],
            4,
            |b, a| vec![b.mul(a[0], x)],
        );
        b.ret(&r);
        let mut f = b.finish();
        assign_levels(&mut f, &CompileOptions::new(CkksParams::test_small())).unwrap();
        let c10 = estimate_cost_us(&f, 10);
        let c40 = estimate_cost_us(&f, 40);
        assert!(c40 > 3.5 * c10 && c40 < 4.5 * c10, "{c10} vs {c40}");
    }

    #[test]
    fn bootstraps_dominate_the_estimate() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let w = b.input_cipher("w");
        let r = b.for_loop(
            TripCount::dynamic("n"),
            &[w],
            4,
            |b, a| vec![b.mul(a[0], x)],
        );
        b.ret(&r);
        let mut f = b.finish();
        assign_levels(&mut f, &CompileOptions::new(CkksParams::test_small())).unwrap();
        let total = estimate_cost_us(&f, 40);
        let boots = f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. })) as f64;
        let boot_us = boots * 40.0 * 463_171.0;
        assert!(boot_us / total > 0.9, "bootstraps should dominate: {total}");
    }
}
