//! # halo-core — the HALO compiler
//!
//! Implements the paper's contribution: loop-aware automatic bootstrapping
//! management for RNS-CKKS programs, plus the DaCapo full-unrolling baseline
//! it is evaluated against.
//!
//! ## Pipeline (paper §4.3)
//!
//! ```text
//! traced IR
//!   └─ peel          §5.1  encryption-status matching (Challenge A-1)
//!   └─ unroll        §6.2  level-aware unrolling       (Challenge B-2)
//!   └─ pack          §6.1  loop-carried packing        (Challenge B-1)
//!   └─ scale/levels  §5.2  modswitch floors + head bootstraps (A-2),
//!                    §5.3  in-body DaCapo placement on deep bodies
//!   └─ tune          §6.3  bootstrap target-level tuning (Challenge B-3)
//!   └─ dce + verify
//! ```
//!
//! The five evaluation configurations of §7 ([`config::CompilerConfig`])
//! toggle these passes; [`pipeline::compile`] is the single entry point.
//!
//! ## Module map
//!
//! - [`config`] — compiler configurations and options.
//! - [`autotune`] — per-program optimal-placement search over the joint
//!   (unroll × pack × peel × tune) space the heuristics fix by rule.
//! - [`levelsim`] — pure level/latency simulator (no IR mutation), used by
//!   bootstrap placement to evaluate candidate plans.
//! - [`scale`] — materializing scale management: inserts `rescale` and
//!   `modswitch`, performs the loop type-matching of Algorithm 1, and hooks
//!   in-body bootstrap placement.
//! - [`placement`] — DaCapo-style straight-line bootstrap placement
//!   (liveness, candidate filtering, dynamic programming).
//! - [`peel`] — first-iteration loop peeling.
//! - [`pack`] — loop-carried ciphertext packing.
//! - [`unroll`] — level-aware loop unrolling.
//! - [`tune`] — bootstrap target-level tuning.
//! - [`dacapo`] — full unrolling (the baseline's loop "support").
//! - [`dce`] — dead-code elimination.
//! - [`pipeline`] — configuration-driven driver + compile statistics.

pub mod autotune;
pub mod config;
pub mod cost_est;
pub mod dacapo;
pub mod dce;
pub mod error;
pub mod levelsim;
pub mod pack;
pub mod peel;
pub mod pipeline;
pub mod placement;
pub mod scale;
pub mod tune;
pub mod unroll;

pub use autotune::{
    autotune, BranchBoundTuner, DefaultPolicy, ExhaustiveTuner, PolicyHook, SearchSpace,
    TuneOutcome, TunePlan, Tuner, UnrollChoice,
};
pub use config::{CompileOptions, CompilerConfig};
pub use error::CompileError;
pub use pipeline::{
    compile, compile_with_hooks, CompileResult, Pass, PassRecord, PipelineHooks, ASSUMED_TRIPS,
};
