//! Compiler configurations: the five variants of the paper's evaluation.

use halo_ckks::CkksParams;

/// The five bootstrapping-management configurations compared in §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerConfig {
    /// DaCapo baseline: fully unroll every loop, then place bootstraps over
    /// the straight-line program (candidate filtering + DP). Rejects
    /// dynamic trip counts.
    DaCapo,
    /// HALO's type-matched loop only: peel + floor modswitch + per-variable
    /// head bootstraps, no optimization.
    TypeMatched,
    /// Type-matched + loop-carried packing (§6.1).
    Packing,
    /// Packing + level-aware unrolling (§6.2).
    PackingUnrolling,
    /// All optimizations: packing + unrolling + target-level tuning (§6.3).
    Halo,
}

impl CompilerConfig {
    /// All five configurations in the paper's presentation order.
    pub const ALL: [CompilerConfig; 5] = [
        CompilerConfig::DaCapo,
        CompilerConfig::TypeMatched,
        CompilerConfig::Packing,
        CompilerConfig::PackingUnrolling,
        CompilerConfig::Halo,
    ];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CompilerConfig::DaCapo => "DaCapo",
            CompilerConfig::TypeMatched => "Type-matched",
            CompilerConfig::Packing => "Packing",
            CompilerConfig::PackingUnrolling => "Packing+Unrolling",
            CompilerConfig::Halo => "HALO",
        }
    }

    /// Whether this configuration applies the packing optimization.
    #[must_use]
    pub fn packs(self) -> bool {
        matches!(
            self,
            CompilerConfig::Packing | CompilerConfig::PackingUnrolling | CompilerConfig::Halo
        )
    }

    /// Whether this configuration applies level-aware unrolling.
    #[must_use]
    pub fn unrolls(self) -> bool {
        matches!(
            self,
            CompilerConfig::PackingUnrolling | CompilerConfig::Halo
        )
    }

    /// Whether this configuration tunes bootstrap target levels.
    #[must_use]
    pub fn tunes(self) -> bool {
        matches!(self, CompilerConfig::Halo)
    }
}

/// Knobs shared by every configuration.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Scheme parameters (level budget, slot count).
    pub params: CkksParams,
    /// DaCapo candidate filter width: how many lowest-live-count program
    /// points the placement DP considers (§5.3: "DaCapo filters the
    /// candidate bootstrapping insertion points").
    pub placement_filter: usize,
}

impl CompileOptions {
    /// Default options for the given parameters.
    #[must_use]
    pub fn new(params: CkksParams) -> CompileOptions {
        CompileOptions {
            params,
            placement_filter: 96,
        }
    }
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions::new(CkksParams::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_feature_matrix() {
        use CompilerConfig as C;
        assert!(!C::DaCapo.packs() && !C::DaCapo.unrolls() && !C::DaCapo.tunes());
        assert!(!C::TypeMatched.packs());
        assert!(C::Packing.packs() && !C::Packing.unrolls());
        assert!(C::PackingUnrolling.unrolls() && !C::PackingUnrolling.tunes());
        assert!(C::Halo.packs() && C::Halo.unrolls() && C::Halo.tunes());
        assert_eq!(C::ALL.len(), 5);
    }
}
