//! Compiler configurations: the five variants of the paper's evaluation,
//! plus the autotuner's per-program plans.

use halo_ckks::CkksParams;

use crate::autotune::{TunePlan, UnrollChoice};

/// The five bootstrapping-management configurations compared in §7, plus
/// [`CompilerConfig::Tuned`] — an explicit per-program plan produced by
/// the autotuner's search over the same knobs the heuristics fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerConfig {
    /// DaCapo baseline: fully unroll every loop, then place bootstraps over
    /// the straight-line program (candidate filtering + DP). Rejects
    /// dynamic trip counts.
    DaCapo,
    /// HALO's type-matched loop only: peel + floor modswitch + per-variable
    /// head bootstraps, no optimization.
    TypeMatched,
    /// Type-matched + loop-carried packing (§6.1).
    Packing,
    /// Packing + level-aware unrolling (§6.2).
    PackingUnrolling,
    /// All optimizations: packing + unrolling + target-level tuning (§6.3).
    Halo,
    /// An explicit autotuned plan (`crate::autotune`): every knob the
    /// heuristic variants decide by rule is spelled out per program.
    Tuned(TunePlan),
}

impl CompilerConfig {
    /// All five configurations in the paper's presentation order.
    pub const ALL: [CompilerConfig; 5] = [
        CompilerConfig::DaCapo,
        CompilerConfig::TypeMatched,
        CompilerConfig::Packing,
        CompilerConfig::PackingUnrolling,
        CompilerConfig::Halo,
    ];

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CompilerConfig::DaCapo => "DaCapo",
            CompilerConfig::TypeMatched => "Type-matched",
            CompilerConfig::Packing => "Packing",
            CompilerConfig::PackingUnrolling => "Packing+Unrolling",
            CompilerConfig::Halo => "HALO",
            CompilerConfig::Tuned(_) => "Tuned",
        }
    }

    /// Whether this configuration applies the packing optimization.
    #[must_use]
    pub fn packs(self) -> bool {
        match self {
            CompilerConfig::Packing | CompilerConfig::PackingUnrolling | CompilerConfig::Halo => {
                true
            }
            CompilerConfig::Tuned(p) => p.pack,
            _ => false,
        }
    }

    /// Whether this configuration applies loop unrolling of any kind
    /// (level-aware, explicit-factor, or full).
    #[must_use]
    pub fn unrolls(self) -> bool {
        match self {
            CompilerConfig::PackingUnrolling | CompilerConfig::Halo => true,
            CompilerConfig::Tuned(p) => !matches!(p.unroll, UnrollChoice::None),
            _ => false,
        }
    }

    /// Whether this configuration tunes bootstrap target levels.
    #[must_use]
    pub fn tunes(self) -> bool {
        match self {
            CompilerConfig::Halo => true,
            CompilerConfig::Tuned(p) => p.tune_targets,
            _ => false,
        }
    }
}

/// Knobs shared by every configuration.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Scheme parameters (level budget, slot count).
    pub params: CkksParams,
    /// DaCapo candidate filter width: how many lowest-live-count program
    /// points the placement DP considers (§5.3: "DaCapo filters the
    /// candidate bootstrapping insertion points").
    pub placement_filter: usize,
}

impl CompileOptions {
    /// Default options for the given parameters.
    #[must_use]
    pub fn new(params: CkksParams) -> CompileOptions {
        CompileOptions {
            params,
            placement_filter: 96,
        }
    }
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions::new(CkksParams::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_feature_matrix() {
        use CompilerConfig as C;
        assert!(!C::DaCapo.packs() && !C::DaCapo.unrolls() && !C::DaCapo.tunes());
        assert!(!C::TypeMatched.packs());
        assert!(C::Packing.packs() && !C::Packing.unrolls());
        assert!(C::PackingUnrolling.unrolls() && !C::PackingUnrolling.tunes());
        assert!(C::Halo.packs() && C::Halo.unrolls() && C::Halo.tunes());
        assert_eq!(C::ALL.len(), 5);
    }

    #[test]
    fn tuned_features_read_the_plan() {
        use CompilerConfig as C;
        let plan = TunePlan {
            unroll: UnrollChoice::Factor(3),
            pack: true,
            peel_extra: 1,
            tune_targets: false,
        };
        let c = C::Tuned(plan);
        assert_eq!(c.name(), "Tuned");
        assert!(c.packs() && c.unrolls() && !c.tunes());
        let base = C::Tuned(TunePlan::baseline());
        assert!(!base.packs() && !base.unrolls() && !base.tunes());
    }
}
