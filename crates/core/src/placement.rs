//! DaCapo-style bootstrap placement for straight-line op sequences
//! (paper §5.3 and \[13\]).
//!
//! Given a block whose entry values are already typed, this pass decides
//! *where* to insert bootstraps so that no multiplication underflows:
//!
//! 1. compute backward **liveness** at every program point;
//! 2. **filter candidates** to the points with the fewest live ciphertexts
//!    (bootstrapping at a point means bootstrapping *every* live ciphertext,
//!    so fewer live values = cheaper reset — DaCapo's heuristic);
//! 3. run a **dynamic program** over candidate points: a segment between
//!    consecutive reset points is feasible iff the pure level simulation
//!    ([`crate::levelsim`]) traverses it without underflow when every
//!    live-in enters at the maximum level; segment cost is the simulated
//!    latency, reset cost is one maximum-level bootstrap per live
//!    ciphertext.
//!
//! The paper notes this filtering "can miss better solutions" (§7.1) — that
//! imperfection is part of the baseline being reproduced. If the filtered
//! DP is infeasible the filter is widened (×2) until it covers every point,
//! and only then is the program declared depth-infeasible.

use std::collections::HashSet;

use halo_ckks::{CostModel, CostedOp};
use halo_ir::analysis::liveness;
use halo_ir::func::{BlockId, Function, ValueId};
use halo_ir::op::Opcode;
use halo_ir::types::{CtType, Status};

use crate::config::CompileOptions;
use crate::error::CompileError;
use crate::levelsim::{sim_range, SimTypes};

/// Ensures `block` can be leveled without underflow, inserting bootstraps
/// at DP-chosen points if necessary. Entry values (block args, live-ins)
/// must already carry concrete types. Returns the number of bootstrap ops
/// inserted.
///
/// # Errors
///
/// Returns [`CompileError::DepthInfeasible`] when even unfiltered placement
/// cannot level the block (a single op chain deeper than the level budget).
pub fn ensure_feasible(
    f: &mut Function,
    block: BlockId,
    opts: &CompileOptions,
) -> Result<usize, CompileError> {
    let cost = CostModel::new();
    let max_level = opts.params.max_level;
    let ops = f.block(block).ops.clone();

    // Fast path: already feasible.
    {
        let mut types = SimTypes::new(f);
        let sim = sim_range(f, &ops, &mut types, &cost, max_level);
        if sim.underflow_at.is_none() {
            return Ok(0);
        }
    }

    let live = liveness(f, block, &HashSet::new());
    // Values whose type is already pinned at the full level (function
    // inputs, results of earlier max-level bootstraps) gain nothing from a
    // reset; exclude them so live-ins at L are not pointlessly re-bootstrapped.
    let already_full = |v: ValueId| {
        let t = f.ty(v);
        t.has_level() && t.level == max_level && t.degree == 1
    };
    let live_cipher: Vec<Vec<ValueId>> = live
        .iter()
        .map(|set| {
            let mut v: Vec<ValueId> = set
                .iter()
                .copied()
                .filter(|&v| f.ty(v).status == Status::Cipher && !already_full(v))
                .collect();
            v.sort_unstable();
            v
        })
        .collect();

    // The filter scales with program size (one candidate window per ~24
    // ops at least) — this is what makes DaCapo's compile time grow with
    // the unrolled program (Table 6) while keeping plans competitive.
    let mut filter = opts.placement_filter.max(ops.len() / 24).max(1);
    loop {
        match plan_with_filter(f, &ops, &live_cipher, filter, &cost, max_level) {
            Some(points) => {
                let mut inserted = 0;
                // Per segment (point → next point/end), bootstrap only the
                // live values the segment uses. Insert in descending order
                // so earlier insertions see (and re-route) later
                // bootstraps' operands.
                let mut bounded = points.clone();
                bounded.push(ops.len());
                let mut work: Vec<(usize, Vec<ValueId>)> = points
                    .iter()
                    .zip(bounded.iter().skip(1))
                    .map(|(&k, &next)| {
                        let live: HashSet<ValueId> = live_cipher[k].iter().copied().collect();
                        (k, used_in_range(f, &ops, k, next, &live))
                    })
                    .collect();
                work.sort_unstable_by_key(|w| std::cmp::Reverse(w.0));
                for (k, values) in work {
                    inserted += insert_reset(f, block, k, &values, max_level);
                }
                return Ok(inserted);
            }
            None if filter > ops.len() => {
                return Err(CompileError::DepthInfeasible {
                    op: ops.first().copied(),
                    detail: format!(
                        "no bootstrap plan exists for a {}-op block at level budget {max_level}",
                        ops.len()
                    ),
                });
            }
            None => filter *= 2,
        }
    }
}

/// The values among `candidates` used by ops `ops[from..to]` (looking
/// through nested loop bodies, whose live-ins count as uses).
fn used_in_range(
    f: &Function,
    ops: &[halo_ir::OpId],
    from: usize,
    to: usize,
    candidates: &HashSet<ValueId>,
) -> Vec<ValueId> {
    let mut used = Vec::new();
    let mut seen: HashSet<ValueId> = HashSet::new();
    for &op_id in &ops[from..to.min(ops.len())] {
        let op = f.op(op_id);
        for &v in &op.operands {
            if candidates.contains(&v) && seen.insert(v) {
                used.push(v);
            }
        }
        if let Opcode::For { body, .. } = op.opcode {
            for v in halo_ir::analysis::live_ins(f, body) {
                if candidates.contains(&v) && seen.insert(v) {
                    used.push(v);
                }
            }
        }
    }
    used.sort_unstable();
    used
}

/// Runs the DP with the given candidate-filter width. Returns the chosen
/// reset points, or `None` if infeasible under this filter.
fn plan_with_filter(
    f: &Function,
    ops: &[halo_ir::OpId],
    live_cipher: &[Vec<ValueId>],
    filter: usize,
    cost: &CostModel,
    max_level: u32,
) -> Option<Vec<usize>> {
    let p = ops.len();

    // Candidate points, filtered by live-ciphertext count (DaCapo §5.3).
    // One candidate per program window (the min-live point in it), so the
    // filtered set covers the whole op stream instead of clustering where
    // ties sort first.
    let windows = filter.min(p);
    let mut candidates: Vec<usize> = (0..windows)
        .map(|w| {
            let lo = w * p / windows;
            let hi = ((w + 1) * p / windows).max(lo + 1);
            (lo..hi)
                .min_by_key(|&k| live_cipher[k].len())
                .expect("window non-empty")
        })
        .collect();
    candidates.dedup();

    // Segment simulation from a reset at point `i`: all live ciphertexts
    // enter at the maximum level.
    let seg_sim = |i: usize, from_entry: bool| {
        let mut types = SimTypes::new(f);
        if !from_entry {
            for &v in &live_cipher[i] {
                types.set(v, CtType::cipher(max_level));
            }
        }
        sim_range(f, &ops[i..], &mut types, cost, max_level)
    };

    let bs_unit = cost.latency_us(CostedOp::Bootstrap { target: max_level });

    // dp[j]: (cost, predecessor candidate) for executing ops[0..j) with j a
    // reset point or the end. A reset at i serving segment (i, j) only
    // bootstraps the live values actually *used* in (i, j) — values merely
    // passing through are reset later, where (and if) they are consumed.
    let entry_sim = seg_sim(0, true);
    let entry_reach = entry_sim.underflow_at.unwrap_or(p);

    let mut dp: Vec<Option<(f64, Option<usize>)>> = vec![None; p + 1];
    let positions: Vec<usize> = candidates
        .iter()
        .copied()
        .chain(std::iter::once(p))
        .collect();
    for &j in &positions {
        if j <= entry_reach {
            dp[j] = Some((entry_sim.cum_cost[j], None));
        }
    }
    for (ci, &i) in candidates.iter().enumerate() {
        let Some((base, _)) = dp[i] else { continue };
        let sim = seg_sim(i, false);
        let reach = i + sim.underflow_at.unwrap_or(p - i);
        // Cumulative count of live-at-i values first used by each point.
        let live_set: HashSet<ValueId> = live_cipher[i].iter().copied().collect();
        let mut first_use_count = vec![0u32; reach - i + 1];
        {
            let mut seen: HashSet<ValueId> = HashSet::new();
            for (k, &op_id) in ops[i..reach].iter().enumerate() {
                let mut uses = Vec::new();
                let op = f.op(op_id);
                for &v in &op.operands {
                    uses.push(v);
                }
                if let Opcode::For { body, .. } = op.opcode {
                    uses.extend(halo_ir::analysis::live_ins(f, body));
                }
                let mut newly = 0;
                for v in uses {
                    if live_set.contains(&v) && seen.insert(v) {
                        newly += 1;
                    }
                }
                first_use_count[k + 1] = first_use_count[k] + newly;
            }
        }
        for &j in positions.iter().skip_while(|&&j| j <= i) {
            if j > reach {
                break;
            }
            let bc = f64::from(first_use_count[j - i]) * bs_unit;
            let c = base + bc + sim.cum_cost[j - i];
            if dp[j].is_none_or(|(best, _)| c < best) {
                dp[j] = Some((c, Some(ci)));
            }
        }
    }

    let (_, mut pred) = dp[p]?;
    let mut points = Vec::new();
    while let Some(ci) = pred {
        let i = candidates[ci];
        points.push(i);
        pred = dp[i].and_then(|(_, pr)| pr);
    }
    points.reverse();
    Some(points)
}

/// Inserts, before op index `k` of `block`, one `bootstrap` per live
/// ciphertext, re-routing all later uses. Returns the number inserted.
fn insert_reset(
    f: &mut Function,
    block: BlockId,
    k: usize,
    live: &[ValueId],
    max_level: u32,
) -> usize {
    let mut at = k;
    for &v in live {
        let bs = f.insert_op(
            block,
            at,
            Opcode::Bootstrap { target: max_level },
            vec![v],
            &[CtType {
                status: Status::Cipher,
                ..CtType::cipher_unset()
            }],
        );
        at += 1;
        let new_v = f.op(bs).results[0];
        replace_uses_from(f, block, at, v, new_v);
    }
    live.len()
}

/// Replaces uses of `old` with `new` in ops `block[from..]` and their
/// nested bodies.
pub(crate) fn replace_uses_from(
    f: &mut Function,
    block: BlockId,
    from: usize,
    old: ValueId,
    new: ValueId,
) {
    let tail: Vec<_> = f.block(block).ops[from..].to_vec();
    for op_id in tail {
        replace_in_op_rec(f, op_id, old, new);
    }
}

fn replace_in_op_rec(f: &mut Function, op_id: halo_ir::OpId, old: ValueId, new: ValueId) {
    for i in 0..f.op(op_id).operands.len() {
        if f.op(op_id).operands[i] == old {
            f.op_mut(op_id).operands[i] = new;
        }
    }
    if let Opcode::For { body, .. } = f.op(op_id).opcode {
        let ops = f.block(body).ops.clone();
        for inner in ops {
            replace_in_op_rec(f, inner, old, new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ckks::CkksParams;
    use halo_ir::FunctionBuilder;

    fn opts() -> CompileOptions {
        CompileOptions::new(CkksParams::test_small())
    }

    /// A chain of `depth` squarings starting from a fresh input at L.
    fn chain(depth: usize) -> (Function, ValueId) {
        let mut b = FunctionBuilder::new("chain", 8);
        let x = b.input_cipher("x");
        let mut v = x;
        for _ in 0..depth {
            v = b.mul(v, v);
        }
        b.ret(&[v]);
        (b.finish(), x)
    }

    fn prep(f: &mut Function, x: ValueId, level: u32) {
        f.set_ty(x, CtType::cipher(level));
        // Normalize plain values so sim sees concrete types.
    }

    #[test]
    fn shallow_block_needs_no_bootstraps() {
        let (mut f, x) = chain(5);
        prep(&mut f, x, 16);
        let e = f.entry;
        let n = ensure_feasible(&mut f, e, &opts()).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn deep_chain_gets_minimal_resets() {
        // Depth 20 at budget 16: one reset suffices (16 + 16 ≥ 20), and
        // exactly one value is live at every point of a pure chain.
        let (mut f, x) = chain(20);
        prep(&mut f, x, 16);
        let e = f.entry;
        let n = ensure_feasible(&mut f, e, &opts()).unwrap();
        assert_eq!(n, 1, "a single live value needs a single bootstrap");
        // The block must now simulate cleanly.
        let ops = f.block(f.entry).ops.clone();
        let mut types = SimTypes::new(&f);
        let sim = sim_range(&f, &ops, &mut types, &CostModel::new(), 16);
        assert_eq!(sim.underflow_at, None);
    }

    #[test]
    fn very_deep_chain_gets_multiple_resets() {
        let (mut f, x) = chain(50);
        prep(&mut f, x, 16);
        let e = f.entry;
        let n = ensure_feasible(&mut f, e, &opts()).unwrap();
        // 50 levels of depth at a 16-level budget: ≥ ⌈(50−16)/16⌉ = 3.
        assert!(n >= 3, "need at least 3 resets, got {n}");
        assert!(n <= 4, "should not over-place, got {n}");
    }

    #[test]
    fn placement_prefers_points_with_fewer_live_values() {
        // Two parallel deep chains that merge: points inside one chain have
        // 2 live values; the point after the merge has 1. A reset after the
        // merge costs half as much.
        let mut b = FunctionBuilder::new("merge", 8);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let mut u = x;
        let mut v = y;
        for _ in 0..6 {
            u = b.mul(u, u);
            v = b.mul(v, v);
        }
        let mut m = b.mul(u, v); // depth 7
        for _ in 0..6 {
            m = b.mul(m, m); // depth 13 total
        }
        b.ret(&[m]);
        let mut f = b.finish();
        f.set_ty(x, CtType::cipher(8));
        f.set_ty(y, CtType::cipher(8));
        // Budget 8: the chains need a reset somewhere; after the merge only
        // one value is live.
        let mut o = opts();
        o.params.max_level = 8;
        let e = f.entry;
        let n = ensure_feasible(&mut f, e, &o).unwrap();
        // The cheap plan bootstraps the single merged value once (plus
        // possibly nothing else); bootstrapping inside the parallel zone
        // would cost 2 per reset.
        assert!(n <= 2, "expected cheap post-merge reset(s), got {n}");
        let boots = f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. }));
        assert_eq!(boots, n);
    }

    #[test]
    fn impossible_depth_reports_infeasible() {
        // depth budget 2, but a single mult chain of depth 40 with BOTH
        // operands of every mult being the (single) live value is still
        // segmentable... a truly infeasible case needs one op that itself
        // exceeds the budget — impossible for mult (depth 1). So instead:
        // budget 0 — no mult is ever legal and no bootstrap target ≥ 1
        // exists... ensure the widened filter terminates with an error.
        let (mut f, x) = chain(3);
        prep(&mut f, x, 0);
        let mut o = opts();
        o.params.max_level = 0;
        let e = f.entry;
        let err = ensure_feasible(&mut f, e, &o).unwrap_err();
        assert!(matches!(err, CompileError::DepthInfeasible { .. }));
    }
}
