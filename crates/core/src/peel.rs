//! First-iteration loop peeling — encryption-status matching (paper §5.1).
//!
//! A loop-carried variable whose initial value is plaintext but which is
//! updated through ciphertext arithmetic becomes a ciphertext after the
//! first iteration and never reverts (Challenge A-1). Peeling the first
//! iteration out of the loop makes the remaining iterations
//! status-homogeneous: the peeled copy runs with the original (plain)
//! inits and its yields — now ciphertexts — feed a loop whose carried
//! variables are uniformly cipher.
//!
//! After statuses change, arithmetic opcode *variants* must be
//! renormalized: a `multcp` traced against a then-plain carried variable
//! becomes a `multcc` once that variable is cipher
//! ([`normalize_arith_opcodes`]).

use std::collections::{HashMap, HashSet};

use halo_ir::analysis::propagate_statuses;
use halo_ir::func::{BlockId, Function, OpId};
use halo_ir::op::Opcode;
use halo_ir::subst::clone_body_ops;
use halo_ir::types::Status;

/// Peels the first iteration of every loop whose carried variables have a
/// plain init but a cipher steady state. Each loop is peeled **at most
/// once** (the paper's rule — peeling more would execute extra
/// iterations); if a carried variable's init is *still* plain afterwards
/// (a cascade through another carried variable), it is trivially
/// encrypted instead. Returns the number of loops peeled.
pub fn peel_loops(f: &mut Function) -> usize {
    let mut total = 0;
    let mut already: HashSet<OpId> = HashSet::new();
    fold_zero_trip_loops(f);
    loop {
        propagate_statuses(f);
        let Some((block, op)) = find_peelable(f, f.entry, &already) else {
            break;
        };
        peel_one(f, block, op);
        already.insert(op);
        total += 1;
        fold_zero_trip_loops(f);
    }
    propagate_statuses(f);
    encrypt_residual_plain_inits(f, f.entry);
    propagate_statuses(f);
    normalize_arith_opcodes(f);
    total
}

/// Peels up to `extra` additional first iterations off every
/// **constant-trip** loop (recursing into nested bodies), beyond the
/// status-matching peel of [`peel_loops`]. This is the autotuner's "peel
/// depth" knob: a peeled iteration becomes straight-line code that levels
/// without the loop's per-iteration floor coercion, which can trade a
/// head bootstrap for a few straight-line ops on short loops.
///
/// Dynamic-trip loops are left alone — the runtime only guarantees one
/// iteration, which the mandatory status peel may already consume, so a
/// deeper peel could execute iterations the source program never ran.
/// Constant trips clamp at zero (fully peeled loops fold away), so any
/// `extra` is semantics-preserving. Returns the number of iterations
/// peeled.
pub fn peel_constant_iterations(f: &mut Function, extra: u32) -> usize {
    if extra == 0 {
        return 0;
    }
    let mut total = 0;
    for _ in 0..extra {
        let mut target = None;
        // One pass per round: find a constant-trip loop that still has
        // iterations to give and has not been peeled this round.
        let mut peeled_this_round = Vec::new();
        loop {
            propagate_statuses(f);
            f.walk_ops(|block, op| {
                if target.is_none() && !peeled_this_round.contains(&op) {
                    if let Opcode::For { trip, .. } = &f.op(op).opcode {
                        if matches!(trip, halo_ir::op::TripCount::Constant(n) if *n > 0) {
                            target = Some((block, op));
                        }
                    }
                }
            });
            let Some((block, op_id)) = target.take() else {
                break;
            };
            peel_one(f, block, op_id);
            peeled_this_round.push(op_id);
            total += 1;
            fold_zero_trip_loops(f);
        }
    }
    propagate_statuses(f);
    encrypt_residual_plain_inits(f, f.entry);
    propagate_statuses(f);
    normalize_arith_opcodes(f);
    total
}

/// Finds the first not-yet-peeled loop (depth-first) with a
/// plain-init/cipher-arg mismatch.
fn find_peelable(f: &Function, block: BlockId, already: &HashSet<OpId>) -> Option<(BlockId, OpId)> {
    for &op_id in &f.block(block).ops {
        if let Opcode::For { body, .. } = f.op(op_id).opcode {
            let op = f.op(op_id);
            let args = &f.block(body).args;
            let mismatch = op.operands.iter().zip(args).any(|(&init, &arg)| {
                f.ty(init).status == Status::Plain && f.ty(arg).status == Status::Cipher
            });
            if mismatch && !already.contains(&op_id) {
                return Some((block, op_id));
            }
            if let Some(found) = find_peelable(f, body, already) {
                return Some(found);
            }
        }
    }
    None
}

/// Replaces `for` loops with a constant trip count of zero by their init
/// values (peeling a one-trip loop leaves such husks behind).
fn fold_zero_trip_loops(f: &mut Function) {
    loop {
        let mut target = None;
        f.walk_ops(|block, op| {
            if target.is_none() {
                if let Opcode::For { trip, .. } = &f.op(op).opcode {
                    if matches!(trip, halo_ir::op::TripCount::Constant(0)) {
                        target = Some((block, op));
                    }
                }
            }
        });
        let Some((block, op_id)) = target else { break };
        let operands = f.op(op_id).operands.clone();
        let results = f.op(op_id).results.clone();
        for (&r, &init) in results.iter().zip(&operands) {
            f.replace_uses(r, init, None);
        }
        let pos = f.position_in_block(block, op_id).expect("loop in block");
        f.block_mut(block).ops.remove(pos);
    }
}

/// Trivially encrypts any plain value bound to a cipher carried slot
/// (recursing into nested bodies): inits that stay plain after the single
/// peel (a status cascade through another carried variable), and yields
/// that are plain while the carried steady state is cipher (a carried
/// slot rebound to a plaintext computation each iteration — the dual of
/// Challenge A-1, which peeling cannot fix).
fn encrypt_residual_plain_inits(f: &mut Function, block: BlockId) {
    let loops = f.loops_in_block(block);
    for op_id in loops {
        let body = f.for_body(op_id);
        encrypt_residual_plain_inits(f, body);
        let args = f.block(body).args.clone();
        for (k, &arg) in args.iter().enumerate() {
            if f.ty(arg).status != Status::Cipher {
                continue;
            }
            let init = f.op(op_id).operands[k];
            if f.ty(init).status == Status::Plain {
                let pos = f.position_in_block(block, op_id).expect("loop in block");
                let enc = f.insert_op1(
                    block,
                    pos,
                    Opcode::Encrypt,
                    vec![init],
                    halo_ir::types::CtType::cipher_unset(),
                );
                f.op_mut(op_id).operands[k] = enc;
            }
            let term = f.terminator(body).expect("loop body terminated");
            let y = f.op(term).operands[k];
            if f.ty(y).status == Status::Plain {
                let pos = f.block(body).ops.len() - 1;
                let enc = f.insert_op1(
                    body,
                    pos,
                    Opcode::Encrypt,
                    vec![y],
                    halo_ir::types::CtType::cipher_unset(),
                );
                let term = f.terminator(body).expect("still terminated");
                f.op_mut(term).operands[k] = enc;
            }
        }
    }
}

/// Peels one iteration of the loop `op_id` (in `block`) out in front of it.
fn peel_one(f: &mut Function, block: BlockId, op_id: OpId) {
    let body = f.for_body(op_id);
    let args = f.block(body).args.clone();
    let inits = f.op(op_id).operands.clone();

    let mut map = HashMap::new();
    for (&arg, &init) in args.iter().zip(&inits) {
        map.insert(arg, init);
    }
    let pos = f
        .position_in_block(block, op_id)
        .expect("loop in its block");
    let yields = clone_body_ops(f, body, block, pos, &mut map);

    // The peeled iteration's yields become the loop's init args, and the
    // trip count drops by one.
    let op = f.op_mut(op_id);
    op.operands = yields;
    if let Opcode::For { trip, .. } = &mut op.opcode {
        *trip = trip.minus_one();
    }
}

/// Rewrites arithmetic opcode variants to match current operand statuses:
/// `*cc` with mixed statuses becomes `*cp` (cipher operand first), `*cp`
/// whose plain operand turned cipher becomes `*cc`, and `subcc` with a
/// plain minuend lowers to `negate` + `addcp`.
pub fn normalize_arith_opcodes(f: &mut Function) {
    let mut work: Vec<(BlockId, OpId)> = Vec::new();
    f.walk_ops(|b, o| work.push((b, o)));
    for (block, op_id) in work {
        let op = f.op(op_id);
        if !op.opcode.is_arith() || op.operands.len() != 2 {
            continue;
        }
        let sa = f.ty(op.operands[0]).status;
        let sb = f.ty(op.operands[1]).status;
        let (a, b) = (op.operands[0], op.operands[1]);
        let new = match (&op.opcode, sa, sb) {
            // Mixed-status CC forms become CP forms.
            (Opcode::AddCC, Status::Cipher, Status::Plain) => Some((Opcode::AddCP, a, b)),
            (Opcode::AddCC, Status::Plain, Status::Cipher) => Some((Opcode::AddCP, b, a)),
            (Opcode::MultCC, Status::Cipher, Status::Plain) => Some((Opcode::MultCP, a, b)),
            (Opcode::MultCC, Status::Plain, Status::Cipher) => Some((Opcode::MultCP, b, a)),
            (Opcode::SubCC, Status::Cipher, Status::Plain) => Some((Opcode::SubCP, a, b)),
            (Opcode::SubCC, Status::Plain, Status::Cipher) => {
                // plain − cipher = (−cipher) + plain.
                let pos = f.position_in_block(block, op_id).expect("op in block");
                let ty = f.ty(b);
                let neg = f.insert_op1(block, pos, Opcode::Negate, vec![b], ty);
                Some((Opcode::AddCP, neg, a))
            }
            // CP forms whose plain side turned cipher become CC forms.
            (Opcode::AddCP, Status::Cipher, Status::Cipher) => Some((Opcode::AddCC, a, b)),
            (Opcode::MultCP, Status::Cipher, Status::Cipher) => Some((Opcode::MultCC, a, b)),
            (Opcode::SubCP, Status::Cipher, Status::Cipher) => Some((Opcode::SubCC, a, b)),
            // CP forms whose *cipher* slot was substituted by a plain
            // value (full unrolling feeds clones with prior-iteration
            // yields): plain–plain folds as a CC form; plain–cipher
            // reorders (or lowers, for subtraction).
            (Opcode::AddCP, Status::Plain, Status::Plain) => Some((Opcode::AddCC, a, b)),
            (Opcode::MultCP, Status::Plain, Status::Plain) => Some((Opcode::MultCC, a, b)),
            (Opcode::SubCP, Status::Plain, Status::Plain) => Some((Opcode::SubCC, a, b)),
            (Opcode::AddCP, Status::Plain, Status::Cipher) => Some((Opcode::AddCP, b, a)),
            (Opcode::MultCP, Status::Plain, Status::Cipher) => Some((Opcode::MultCP, b, a)),
            (Opcode::SubCP, Status::Plain, Status::Cipher) => {
                // plain − cipher = (−cipher) + plain.
                let pos = f.position_in_block(block, op_id).expect("op in block");
                let ty = f.ty(b);
                let neg = f.insert_op1(block, pos, Opcode::Negate, vec![b], ty);
                Some((Opcode::AddCP, neg, a))
            }
            _ => None,
        };
        if let Some((opcode, x, y)) = new {
            let op = f.op_mut(op_id);
            op.opcode = opcode;
            op.operands = vec![x, y];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::op::TripCount;
    use halo_ir::verify::verify_traced;
    use halo_ir::FunctionBuilder;

    /// Paper Figure 2: `a` enters plain, becomes cipher via `add` with the
    /// cipher `y`.
    fn figure2_program() -> Function {
        let mut b = FunctionBuilder::new("fig2", 8);
        let x = b.input_cipher("x");
        let y0 = b.input_cipher("y");
        let a0 = b.const_splat(1.0);
        let r = b.for_loop(TripCount::dynamic("k"), &[y0, a0], 4, |b, args| {
            let x2 = b.mul(x, args[0]);
            let y2 = b.mul(x2, x2);
            let a2 = b.add(args[1], y2);
            vec![y2, a2]
        });
        b.ret(&r);
        b.finish()
    }

    #[test]
    fn peels_exactly_once_and_decrements_trip() {
        let mut f = figure2_program();
        let peeled = peel_loops(&mut f);
        assert_eq!(peeled, 1);
        verify_traced(&f).unwrap();
        let loop_op = f.loops_in_block(f.entry)[0];
        if let Opcode::For { trip, .. } = &f.op(loop_op).opcode {
            assert_eq!(trip.to_string(), "(%k-1)");
        } else {
            panic!("loop disappeared");
        }
        // Every carried variable is now cipher at init, arg, and yield.
        let body = f.for_body(loop_op);
        for (&init, &arg) in f.op(loop_op).operands.iter().zip(&f.block(body).args) {
            assert_eq!(f.ty(init).status, Status::Cipher);
            assert_eq!(f.ty(arg).status, Status::Cipher);
        }
    }

    #[test]
    fn peeled_copy_keeps_plain_opcodes_loop_gets_cc() {
        let mut f = figure2_program();
        peel_loops(&mut f);
        // The peeled copy's add uses the plain a0 → addcp; the in-loop add
        // now has two cipher operands → addcc.
        let entry_ops: Vec<_> = f
            .block(f.entry)
            .ops
            .iter()
            .map(|&o| f.op(o).opcode.mnemonic())
            .collect();
        assert!(
            entry_ops.contains(&"addcp"),
            "peeled add stays cp: {entry_ops:?}"
        );
        let body = f.for_body(f.loops_in_block(f.entry)[0]);
        let body_ops: Vec<_> = f
            .block(body)
            .ops
            .iter()
            .map(|&o| f.op(o).opcode.mnemonic())
            .collect();
        assert!(
            body_ops.contains(&"addcc"),
            "in-loop add normalized to cc: {body_ops:?}"
        );
        assert!(!body_ops.contains(&"addcp"), "{body_ops:?}");
    }

    #[test]
    fn all_cipher_loop_is_not_peeled() {
        let mut b = FunctionBuilder::new("t", 8);
        let w = b.input_cipher("w");
        let r = b.for_loop(TripCount::Constant(5), &[w], 4, |b, a| {
            vec![b.mul(a[0], a[0])]
        });
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(peel_loops(&mut f), 0);
        let loop_op = f.loops_in_block(f.entry)[0];
        if let Opcode::For { trip, .. } = &f.op(loop_op).opcode {
            assert_eq!(*trip, TripCount::Constant(5));
        }
    }

    #[test]
    fn plain_only_carried_variable_is_not_peeled() {
        // A carried variable that stays plain forever needs no peel.
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let c0 = b.const_splat(1.0);
        let r = b.for_loop(TripCount::Constant(5), &[x, c0], 4, |b, args| {
            let two = b.const_splat(2.0);
            let c2 = b.mul(args[1], two);
            let x2 = b.mul(args[0], args[0]);
            vec![x2, c2]
        });
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(peel_loops(&mut f), 0);
    }

    #[test]
    fn constant_trip_count_peels_to_n_minus_1() {
        let mut b = FunctionBuilder::new("t", 8);
        let y = b.input_cipher("y");
        let a0 = b.const_splat(0.5);
        let r = b.for_loop(TripCount::Constant(40), &[a0], 4, |b, args| {
            vec![b.add(args[0], y)]
        });
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(peel_loops(&mut f), 1);
        let loop_op = f.loops_in_block(f.entry)[0];
        if let Opcode::For { trip, .. } = &f.op(loop_op).opcode {
            assert_eq!(*trip, TripCount::Constant(39));
        }
    }

    #[test]
    fn loops_peel_at_most_once_with_residual_encrypts() {
        // A status cascade: carried `b`'s yield is `a`'s old value, so
        // after one peel `b`'s init is still plain. The fix must be a
        // trivial encryption, NOT a second peel (which would execute an
        // extra iteration).
        let mut bld = FunctionBuilder::new("cascade", 8);
        let x = bld.input_cipher("x");
        let a0 = bld.const_splat(0.5);
        let b0 = bld.const_splat(0.25);
        let r = bld.for_loop(TripCount::Constant(3), &[a0, b0], 4, |bld, args| {
            let a2 = bld.add(args[0], x); // a turns cipher immediately
            let b2 = args[0]; // b inherits a's previous value
            vec![a2, b2]
        });
        bld.ret(&r);
        let mut f = bld.finish();
        let peeled = peel_loops(&mut f);
        assert_eq!(peeled, 1, "exactly one peel");
        let loop_op = f.loops_in_block(f.entry)[0];
        if let Opcode::For { trip, .. } = &f.op(loop_op).opcode {
            assert_eq!(*trip, TripCount::Constant(2), "trip drops exactly once");
        }
        // The residual plain init was encrypted.
        assert!(f.count_ops(|o| matches!(o, Opcode::Encrypt)) >= 1);
        verify_traced(&f).unwrap();
        // Semantics: 0.5, then a=0.5+x, b=0.5; a=0.5+2x, b=0.5+x; ...
        use halo_runtime::{reference_run, Inputs};
        let inputs = Inputs::new().cipher("x", vec![1.0]);
        let out = reference_run(&f, &inputs, 8).unwrap();
        assert_eq!(out[0][0], 3.5, "a after 3 iterations");
        assert_eq!(out[1][0], 2.5, "b after 3 iterations");
    }

    #[test]
    fn one_trip_loop_peels_to_straight_line() {
        let mut bld = FunctionBuilder::new("t", 8);
        let y = bld.input_cipher("y");
        let a0 = bld.const_splat(1.0);
        let r = bld.for_loop(TripCount::Constant(1), &[a0], 4, |bld, args| {
            vec![bld.add(args[0], y)]
        });
        bld.ret(&r);
        let mut f = bld.finish();
        assert_eq!(peel_loops(&mut f), 1);
        assert!(
            f.loops_in_block(f.entry).is_empty(),
            "the zero-trip husk is folded away"
        );
        use halo_runtime::{reference_run, Inputs};
        let out = reference_run(&f, &Inputs::new().cipher("y", vec![2.0]), 8).unwrap();
        assert_eq!(out[0][0], 3.0);
    }

    #[test]
    fn plain_yield_into_cipher_slot_is_encrypted() {
        // Carried slot starts cipher but is rebound to a plain value each
        // iteration (the dual of Challenge A-1).
        let mut bld = FunctionBuilder::new("t", 8);
        let x = bld.input_cipher("x");
        let r = bld.for_loop(TripCount::Constant(3), &[x], 4, |bld, _args| {
            let p = bld.const_splat(0.75);
            let q = bld.const_splat(2.0);
            vec![bld.mul(p, q)]
        });
        bld.ret(&r);
        let mut f = bld.finish();
        peel_loops(&mut f);
        verify_traced(&f).unwrap();
        let loop_op = f.loops_in_block(f.entry)[0];
        let body = f.for_body(loop_op);
        let term = f.terminator(body).unwrap();
        let y = f.op(term).operands[0];
        assert_eq!(f.ty(y).status, Status::Cipher, "yield coerced to cipher");
        use halo_runtime::{reference_run, Inputs};
        let out = reference_run(&f, &Inputs::new().cipher("x", vec![9.0]), 8).unwrap();
        assert_eq!(out[0][0], 1.5);
    }

    #[test]
    fn extra_peeling_is_constant_trip_only_and_semantics_preserving() {
        // x^2 accumulated 3 times: peel depth 1 leaves a trip-2 loop with
        // one straight-line copy in front; the output must not change.
        let build = || {
            let mut b = FunctionBuilder::new("t", 8);
            let y = b.input_cipher("y");
            let a0 = b.input_cipher("a");
            let r = b.for_loop(TripCount::Constant(3), &[a0], 4, |b, args| {
                vec![b.add(args[0], y)]
            });
            b.ret(&r);
            b.finish()
        };
        use halo_runtime::{reference_run, Inputs};
        let inputs = Inputs::new().cipher("y", vec![2.0]).cipher("a", vec![1.0]);
        let mut f = build();
        assert_eq!(peel_constant_iterations(&mut f, 1), 1);
        verify_traced(&f).unwrap();
        let loop_op = f.loops_in_block(f.entry)[0];
        if let Opcode::For { trip, .. } = &f.op(loop_op).opcode {
            assert_eq!(*trip, TripCount::Constant(2));
        }
        let out = reference_run(&f, &inputs, 8).unwrap();
        assert_eq!(out[0][0], 7.0, "1 + 3*2 regardless of peel depth");

        // Peeling past the trip count folds the loop away entirely.
        let mut f = build();
        assert_eq!(peel_constant_iterations(&mut f, 5), 3);
        verify_traced(&f).unwrap();
        assert!(f.loops_in_block(f.entry).is_empty());
        let out = reference_run(&f, &inputs, 8).unwrap();
        assert_eq!(out[0][0], 7.0);

        // Dynamic trips are never extra-peeled: the runtime only promises
        // one iteration, which the status peel may already consume.
        let mut b = FunctionBuilder::new("t", 8);
        let y = b.input_cipher("y");
        let a0 = b.input_cipher("a");
        let r = b.for_loop(TripCount::dynamic("n"), &[a0], 4, |b, args| {
            vec![b.add(args[0], y)]
        });
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(peel_constant_iterations(&mut f, 2), 0);
    }

    #[test]
    fn normalize_handles_plain_minus_cipher() {
        // subcc(p, c) after p stays plain but c is cipher: lower to
        // negate + addcp.
        let mut b = FunctionBuilder::new("t", 8);
        let one = b.const_splat(1.0);
        let zero = b.const_splat(0.0);
        let x = b.input_cipher("x");
        // Trace a sub of two plains, then force one cipher via a loop-free
        // status change: simplest is to build sub(one, zero) and then turn
        // zero's status cipher by adding x to it in a carried position.
        let r = b.for_loop(TripCount::dynamic("n"), &[zero], 4, |b, args| {
            let s = b.sub(one, args[0]); // traced as plain-plain subcc
            let t = b.add(s, x);
            vec![t]
        });
        b.ret(&r);
        let mut f = b.finish();
        peel_loops(&mut f);
        verify_traced(&f).unwrap();
        let body = f.for_body(f.loops_in_block(f.entry)[0]);
        let body_ops: Vec<_> = f
            .block(body)
            .ops
            .iter()
            .map(|&o| f.op(o).opcode.mnemonic())
            .collect();
        assert!(
            body_ops.contains(&"negate") && body_ops.contains(&"addcp"),
            "plain − cipher lowering: {body_ops:?}"
        );
    }
}
