//! Bootstrap target-level tuning (paper §6.3, Solution B-3).
//!
//! A `modswitch` downstream of a `bootstrap` means the bootstrap restored
//! levels nobody used; since bootstrap latency grows with the target level
//! (Table 3), lowering the target to what the consumers actually need is a
//! pure win. The pass:
//!
//! 1. traces the dataflow region *affected* by each bootstrap's result,
//!    stopping where a `modswitch` (which can absorb the reduction by
//!    shrinking its `down`) or another `bootstrap` (level-agnostic input)
//!    ends the chain;
//! 2. computes the largest uniform level reduction `δ` (the paper's
//!    `downFactor`) the region tolerates: every absorbed `modswitch`
//!    bounds it by its `down`, every `rescale`/`mult` in the region by
//!    `level − 1`, and region boundaries that cannot absorb anything
//!    (yields/returns/loop inits fed directly) force `δ = 0`;
//! 3. bootstraps whose regions meet at a binary op are *grouped* (their
//!    targets must drop in lockstep) via union-find;
//! 4. applies the reduction: targets, affected levels, and the absorbing
//!    modswitch `down`s all shift by `δ`; where the unaffected side of a
//!    binary op arrives through its own single-use `modswitch`, that
//!    modswitch's `down` grows by `δ` instead.
//!
//! Runs on fully typed IR and preserves typedness (re-verified by the
//! pipeline).

use std::collections::HashMap;

use halo_ir::analysis::def_op;
use halo_ir::func::{BlockId, Function, OpId, ValueId};
use halo_ir::op::Opcode;
use halo_ir::types::Status;

/// How the unaffected side of a binary op follows a lowered partner level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OtherSide {
    /// Its defining single-use `modswitch` grows its `down` by δ.
    Boost(OpId),
    /// A fresh `modswitch down δ` is inserted feeding this operand slot.
    Insert {
        /// The binary op consuming the unaffected value.
        consumer: OpId,
        /// Which operand slot to rewire.
        operand_index: usize,
    },
}

/// Union-find over tuning groups with per-root metadata.
struct Groups {
    parent: Vec<usize>,
    slack: Vec<u32>,
    bootstraps: Vec<Vec<OpId>>,
    affected: Vec<Vec<ValueId>>,
    absorb_ms: Vec<Vec<OpId>>,
    others: Vec<Vec<OtherSide>>,
}

impl Groups {
    fn new() -> Groups {
        Groups {
            parent: Vec::new(),
            slack: Vec::new(),
            bootstraps: Vec::new(),
            affected: Vec::new(),
            absorb_ms: Vec::new(),
            others: Vec::new(),
        }
    }

    fn make(&mut self, bootstrap: OpId, initial_slack: u32) -> usize {
        let g = self.parent.len();
        self.parent.push(g);
        self.slack.push(initial_slack);
        self.bootstraps.push(vec![bootstrap]);
        self.affected.push(Vec::new());
        self.absorb_ms.push(Vec::new());
        self.others.push(Vec::new());
        g
    }

    fn find(&mut self, mut g: usize) -> usize {
        while self.parent[g] != g {
            self.parent[g] = self.parent[self.parent[g]];
            g = self.parent[g];
        }
        g
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (keep, merge) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[merge] = keep;
        self.slack[keep] = self.slack[keep].min(self.slack[merge]);
        let moved = std::mem::take(&mut self.bootstraps[merge]);
        self.bootstraps[keep].extend(moved);
        let moved = std::mem::take(&mut self.affected[merge]);
        self.affected[keep].extend(moved);
        let moved = std::mem::take(&mut self.absorb_ms[merge]);
        self.absorb_ms[keep].extend(moved);
        let moved = std::mem::take(&mut self.others[merge]);
        self.others[keep].extend(moved);
        keep
    }

    fn cut(&mut self, g: usize, bound: u32) {
        let r = self.find(g);
        self.slack[r] = self.slack[r].min(bound);
    }
}

/// Tunes bootstrap targets across the function. Returns the number of
/// bootstraps whose target was lowered.
pub fn tune_bootstrap_targets(f: &mut Function) -> usize {
    let mut groups = Groups::new();
    let mut group_of: HashMap<ValueId, usize> = HashMap::new();
    analyze_block(f, f.entry, &mut groups, &mut group_of);

    // Apply each root group's reduction.
    let mut tuned = 0;
    let roots: Vec<usize> = (0..groups.parent.len())
        .filter(|&g| groups.parent[g] == g)
        .collect();
    for r in roots {
        let delta = groups.slack[r];
        if delta == 0 {
            continue;
        }
        for &b in &groups.bootstraps[r] {
            if let Opcode::Bootstrap { target } = &mut f.op_mut(b).opcode {
                *target -= delta;
                tuned += 1;
            }
            let res = f.op(b).results[0];
            let t = f.ty(res);
            f.set_ty(res, t.at_level(t.level - delta));
        }
        for &v in &groups.affected[r] {
            let t = f.ty(v);
            f.set_ty(v, t.at_level(t.level - delta));
        }
        for &m in &groups.absorb_ms[r] {
            if let Opcode::ModSwitch { down } = &mut f.op_mut(m).opcode {
                *down -= delta;
            }
        }
        let others = groups.others[r].clone();
        for other in others {
            match other {
                OtherSide::Boost(m) => {
                    if let Opcode::ModSwitch { down } = &mut f.op_mut(m).opcode {
                        *down += delta;
                    }
                    let res = f.op(m).results[0];
                    let t = f.ty(res);
                    f.set_ty(res, t.at_level(t.level - delta));
                }
                OtherSide::Insert {
                    consumer,
                    operand_index,
                } => {
                    let v = f.op(consumer).operands[operand_index];
                    let t = f.ty(v);
                    let (block, pos) = find_op(f, consumer).expect("consumer op reachable");
                    let ms = f.insert_op1(
                        block,
                        pos,
                        Opcode::ModSwitch { down: delta },
                        vec![v],
                        t.at_level(t.level - delta),
                    );
                    f.op_mut(consumer).operands[operand_index] = ms;
                }
            }
        }
    }
    if tuned > 0 {
        remove_zero_modswitches(f, f.entry);
    }
    tuned + elide_bootstraps(f, f.entry)
}

/// Removes bootstraps whose operand already has at least the (tuned)
/// target level: `bootstrap(v, T)` with `level(v) ≥ T` is equivalent to a
/// `modswitch` (or to `v` itself at equality). These arise when a
/// placement reset conservatively bootstrapped every live ciphertext,
/// including ones still near the top of the modulus chain.
fn elide_bootstraps(f: &mut Function, block: BlockId) -> usize {
    let mut elided = 0;
    let ops = f.block(block).ops.clone();
    for op_id in ops {
        match f.op(op_id).opcode.clone() {
            Opcode::Bootstrap { target } => {
                let v = f.op(op_id).operands[0];
                let t = f.ty(v);
                if t.status != Status::Cipher || t.degree != 1 || t.level < target {
                    continue;
                }
                if t.level == target {
                    let result = f.op(op_id).results[0];
                    f.replace_uses(result, v, None);
                    let pos = f.position_in_block(block, op_id).expect("op in block");
                    f.block_mut(block).ops.remove(pos);
                } else {
                    f.op_mut(op_id).opcode = Opcode::ModSwitch {
                        down: t.level - target,
                    };
                }
                elided += 1;
            }
            Opcode::For { body, .. } => elided += elide_bootstraps(f, body),
            _ => {}
        }
    }
    elided
}

/// Walks one block in execution order, growing the affected regions.
fn analyze_block(
    f: &Function,
    block: BlockId,
    groups: &mut Groups,
    group_of: &mut HashMap<ValueId, usize>,
) {
    let ops = f.block(block).ops.clone();
    for op_id in ops {
        let op = f.op(op_id).clone();
        let operand_groups: Vec<Option<usize>> = op
            .operands
            .iter()
            .map(|v| group_of.get(v).map(|&g| groups.find(g)))
            .collect();
        match &op.opcode {
            Opcode::Bootstrap { target } => {
                // An affected operand is absorbed (bootstrap accepts any
                // level ≥ 0): the group may drop by up to the operand level.
                if let Some(g) = operand_groups[0] {
                    groups.cut(g, f.ty(op.operands[0]).level);
                }
                // The result roots a fresh group; the target itself bounds
                // the reduction (target must stay ≥ 1).
                let g = groups.make(op_id, target.saturating_sub(1));
                group_of.insert(op.results[0], g);
            }
            Opcode::ModSwitch { down } => {
                if let Some(g) = operand_groups[0] {
                    // Absorbing modswitch: shrinks by δ; result unaffected.
                    groups.cut(g, *down);
                    let r = groups.find(g);
                    groups.absorb_ms[r].push(op_id);
                }
            }
            Opcode::Rescale => {
                if let Some(g) = operand_groups[0] {
                    groups.cut(g, f.ty(op.operands[0]).level - 1);
                    mark(groups, group_of, g, op.results[0]);
                }
            }
            Opcode::Negate | Opcode::Rotate { .. } => {
                if let Some(g) = operand_groups[0] {
                    mark(groups, group_of, g, op.results[0]);
                }
            }
            Opcode::AddCC | Opcode::SubCC | Opcode::MultCC => {
                let is_mult = op.opcode.is_mult();
                match (operand_groups[0], operand_groups[1]) {
                    (None, None) => {}
                    (Some(ga), Some(gb)) => {
                        let g = groups.union(ga, gb);
                        if is_mult {
                            groups.cut(g, f.ty(op.operands[0]).level.saturating_sub(1));
                        }
                        mark(groups, group_of, g, op.results[0]);
                    }
                    (Some(g), None) | (None, Some(g)) => {
                        // The unaffected side follows the lowered level:
                        // either its own single-use modswitch deepens, or a
                        // fresh per-use modswitch is inserted.
                        let other_idx = usize::from(operand_groups[0].is_some());
                        let other = op.operands[other_idx];
                        if f.ty(other).status == Status::Cipher {
                            let r = groups.find(g);
                            groups.cut(r, f.ty(other).level);
                            match boostable_modswitch(f, other) {
                                Some(ms) => groups.others[r].push(OtherSide::Boost(ms)),
                                None => groups.others[r].push(OtherSide::Insert {
                                    consumer: op_id,
                                    operand_index: other_idx,
                                }),
                            }
                            if is_mult {
                                groups.cut(g, f.ty(op.operands[0]).level.saturating_sub(1));
                            }
                            mark(groups, group_of, g, op.results[0]);
                        } else {
                            groups.cut(g, 0);
                        }
                    }
                }
            }
            Opcode::AddCP | Opcode::SubCP | Opcode::MultCP => {
                if let Some(g) = operand_groups[0] {
                    if op.opcode.is_mult() {
                        groups.cut(g, f.ty(op.operands[0]).level.saturating_sub(1));
                    }
                    mark(groups, group_of, g, op.results[0]);
                }
            }
            Opcode::Yield | Opcode::Return => {
                // Region reached a boundary with no absorbing modswitch:
                // the boundary's level is part of the loop/function type
                // and must not move.
                for g in operand_groups.into_iter().flatten() {
                    groups.cut(g, 0);
                }
            }
            Opcode::For { body, .. } => {
                for g in operand_groups.into_iter().flatten() {
                    groups.cut(g, 0);
                }
                analyze_block(f, *body, groups, group_of);
            }
            Opcode::Input { .. } | Opcode::Const(_) | Opcode::Encrypt => {}
        }
    }
}

fn mark(groups: &mut Groups, group_of: &mut HashMap<ValueId, usize>, g: usize, v: ValueId) {
    let r = groups.find(g);
    groups.affected[r].push(v);
    group_of.insert(v, r);
}

/// Locates the block and position of a reachable op.
fn find_op(f: &Function, target: OpId) -> Option<(BlockId, usize)> {
    let mut found = None;
    f.walk_ops(|block, op| {
        if op == target && found.is_none() {
            found = Some(block);
        }
    });
    let block = found?;
    f.position_in_block(block, target).map(|pos| (block, pos))
}

/// The defining `modswitch` of `v`, if it is single-use and cipher (so its
/// `down` can safely grow to meet a lowered partner level).
fn boostable_modswitch(f: &Function, v: ValueId) -> Option<OpId> {
    if f.ty(v).status != Status::Cipher {
        return None;
    }
    let d = def_op(f, v)?;
    if !matches!(f.op(d).opcode, Opcode::ModSwitch { .. }) {
        return None;
    }
    (f.uses_of(v).len() == 1).then_some(d)
}

/// Removes `modswitch` ops whose `down` was tuned to zero.
fn remove_zero_modswitches(f: &mut Function, block: BlockId) {
    let ops = f.block(block).ops.clone();
    for op_id in ops {
        match f.op(op_id).opcode.clone() {
            Opcode::ModSwitch { down: 0 } => {
                let operand = f.op(op_id).operands[0];
                let result = f.op(op_id).results[0];
                f.replace_uses(result, operand, None);
                let pos = f.position_in_block(block, op_id).expect("op in block");
                f.block_mut(block).ops.remove(pos);
            }
            Opcode::For { body, .. } => remove_zero_modswitches(f, body),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompileOptions;
    use crate::scale::assign_levels;
    use halo_ckks::CkksParams;
    use halo_ir::op::TripCount;
    use halo_ir::verify::verify_typed;
    use halo_ir::FunctionBuilder;

    fn opts() -> CompileOptions {
        CompileOptions::new(CkksParams::test_small())
    }

    fn bootstrap_targets(f: &Function) -> Vec<u32> {
        let mut t = Vec::new();
        f.walk_ops(|_, o| {
            if let Opcode::Bootstrap { target } = f.op(o).opcode {
                t.push(target);
            }
        });
        t
    }

    #[test]
    fn shallow_loop_body_tunes_head_bootstrap_to_its_depth() {
        // Paper Figure 3, Challenge/Solution B-3: body needs 7 levels but
        // bootstrap restores L; tuning drops the target to the need.
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let w0 = b.input_cipher("w0");
        let r = b.for_loop(TripCount::dynamic("n"), &[w0], 4, |b, args| {
            let mut v = args[0];
            for _ in 0..7 {
                v = b.mul(v, x);
            }
            vec![v]
        });
        b.ret(&r);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        assert_eq!(bootstrap_targets(&f), vec![16]);
        let tuned = tune_bootstrap_targets(&mut f);
        assert_eq!(tuned, 1);
        // Body multiplies w (carried) by x (live-in at 16): x forces the
        // mult levels via its own modswitches, which the pass boosts.
        // depth 7 → target 7... but the chain's last value is floored by a
        // modswitch, giving slack L − 7 = 9: target 16 − 9 = 7.
        assert_eq!(bootstrap_targets(&f), vec![7]);
        verify_typed(&f, 16).unwrap();
    }

    #[test]
    fn fully_consumed_budget_is_not_tuned() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let w0 = b.input_cipher("w0");
        let r = b.for_loop(TripCount::dynamic("n"), &[w0], 4, |b, args| {
            let mut v = args[0];
            for _ in 0..16 {
                v = b.mul(v, x);
            }
            vec![v]
        });
        b.ret(&r);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        let tuned = tune_bootstrap_targets(&mut f);
        assert_eq!(tuned, 0, "no wasted levels, nothing to tune");
        assert_eq!(bootstrap_targets(&f), vec![16]);
    }

    #[test]
    fn grouped_bootstraps_tune_in_lockstep() {
        // Two carried variables whose chains meet at an add: both head
        // bootstraps must drop together.
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let y0 = b.input_cipher("y0");
        let a0 = b.input_cipher("a0");
        let r = b.for_loop(TripCount::dynamic("n"), &[y0, a0], 4, |b, args| {
            let y2 = b.mul(args[0], x); // depth 1
            let a2 = b.mul(args[1], x); // depth 1
            let s = b.add(y2, a2);
            let s2 = b.mul(s, s); // depth 2
            vec![s2, a2]
        });
        b.ret(&r);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        assert_eq!(bootstrap_targets(&f), vec![16, 16]);
        let tuned = tune_bootstrap_targets(&mut f);
        assert_eq!(tuned, 2);
        let targets = bootstrap_targets(&f);
        assert_eq!(targets[0], targets[1], "grouped targets move together");
        assert!(targets[0] < 16 && targets[0] >= 2, "targets = {targets:?}");
        verify_typed(&f, 16).unwrap();
    }

    #[test]
    fn tuning_preserves_types_on_straight_line_resets() {
        // An in-body placement bootstrap near the end of a body wastes
        // levels (the paper's Logistic/K-means/SVM case).
        let mut b = FunctionBuilder::new("t", 8);
        let w0 = b.input_cipher("w0");
        let r = b.for_loop(TripCount::dynamic("n"), &[w0], 4, |b, args| {
            let mut v = args[0];
            for _ in 0..18 {
                v = b.mul(v, v); // depth 18 > 16 → one in-body reset
            }
            vec![v]
        });
        b.ret(&r);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        let before = bootstrap_targets(&f);
        assert_eq!(before.len(), 2);
        let tuned = tune_bootstrap_targets(&mut f);
        assert!(tuned >= 1, "the late reset has unused slack");
        verify_typed(&f, 16).unwrap();
        let after = bootstrap_targets(&f);
        assert!(after.iter().sum::<u32>() < before.iter().sum::<u32>());
    }
}
