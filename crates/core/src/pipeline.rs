//! The configuration-driven compilation driver.

use std::time::Instant;

use halo_ir::op::Opcode;
use halo_ir::Function;

use crate::autotune::{TunePlan, UnrollChoice};
use crate::config::{CompileOptions, CompilerConfig};
use crate::cost_est::estimate_cost_us;
use crate::dacapo::full_unroll;
use crate::dce;
use crate::error::CompileError;
use crate::pack::pack_loops;
use crate::peel::{peel_constant_iterations, peel_loops};
use crate::scale::assign_levels;
use crate::tune::tune_bootstrap_targets;
use crate::unroll::{unroll_loops, unroll_loops_with_factor};

/// Dynamic trip counts are assumed to run this many iterations when the
/// pipeline (and the autotuner) estimates costs — the paper's evaluation
/// iteration count.
pub const ASSUMED_TRIPS: u64 = 40;

/// A named compiler pass, as observed by per-pass pipeline hooks.
///
/// `Dce` is the clean-up run before scale management (the program is still
/// *traced* — no levels); `FinalDce` is the post-everything clean-up on the
/// fully *typed* program. [`Pass::is_typed`] picks the verifier that
/// applies at each boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// First-iteration loop peeling (§5.1).
    Peel,
    /// Level-aware loop unrolling (§6.2).
    Unroll,
    /// Loop-carried ciphertext packing (§6.1).
    Pack,
    /// DaCapo's full loop unrolling (§2.4).
    FullUnroll,
    /// Dead-code elimination on the traced program.
    Dce,
    /// Scale management: level assignment, modswitch floors, bootstrap
    /// placement (§5.2–5.3).
    AssignLevels,
    /// Bootstrap target-level tuning (§6.3).
    Tune,
    /// Final dead-code elimination on the typed program.
    FinalDce,
}

impl Pass {
    /// Every pass, in pipeline order.
    pub const ALL: [Pass; 8] = [
        Pass::Peel,
        Pass::Unroll,
        Pass::Pack,
        Pass::FullUnroll,
        Pass::Dce,
        Pass::AssignLevels,
        Pass::Tune,
        Pass::FinalDce,
    ];

    /// Stable name used in errors and failure artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Pass::Peel => "peel",
            Pass::Unroll => "unroll",
            Pass::Pack => "pack",
            Pass::FullUnroll => "full-unroll",
            Pass::Dce => "dce",
            Pass::AssignLevels => "levels",
            Pass::Tune => "tune",
            Pass::FinalDce => "final-dce",
        }
    }

    /// Looks a pass up by its [`Pass::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Pass> {
        Pass::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Whether the program carries concrete levels after this pass (so
    /// the typed verifier applies instead of the traced one).
    #[must_use]
    pub fn is_typed(self) -> bool {
        matches!(self, Pass::AssignLevels | Pass::Tune | Pass::FinalDce)
    }
}

/// One entry of the per-pass execution trace.
#[derive(Debug, Clone)]
pub struct PassRecord {
    /// Which pass ran.
    pub pass: Pass,
    /// Static op count after the pass.
    pub ops_after: usize,
    /// Whether the inter-pass verifier ran (and passed) at this boundary.
    pub verified: bool,
}

/// A test-only program mutation fired right after a named pass runs.
pub type PassMutation<'a> = &'a mut dyn FnMut(&mut Function);

/// Debug-mode instrumentation threaded through [`compile_with_hooks`].
///
/// With `verify_each_pass` the structural verifier (and, once levels are
/// assigned, the typed verifier) runs after every pass, so an invariant
/// violation is attributed to the *first* pass that introduced it
/// ([`CompileError::PassVerify`]) instead of surfacing at the end of the
/// pipeline — or worse, as a silent miscompile. `mutate_after` is a
/// test-only fault-injection point: the differential fuzzer uses it to
/// prove a known-bad pass mutation is caught and localized correctly.
///
/// The default hooks are inert; [`compile`] uses them, so the plain entry
/// point stays overhead-free apart from trace bookkeeping.
#[derive(Default)]
pub struct PipelineHooks<'a> {
    /// Verify the program at every pass boundary.
    pub verify_each_pass: bool,
    /// Mutate the program right after the named pass runs (before that
    /// boundary's verification). Fires in every pipeline variant that
    /// executes the pass (the cost-aware packing driver builds two).
    pub mutate_after: Option<(Pass, PassMutation<'a>)>,
    /// Record of the passes that ran, in execution order.
    pub trace: Vec<PassRecord>,
}

impl PipelineHooks<'_> {
    /// Hooks with per-pass verification enabled and no injection.
    #[must_use]
    pub fn verifying() -> Self {
        PipelineHooks {
            verify_each_pass: true,
            ..PipelineHooks::default()
        }
    }
}

/// The outcome of compiling a traced program under one configuration.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The fully typed, executable program.
    pub function: Function,
    /// Which configuration produced it.
    pub config: CompilerConfig,
    /// Loops peeled for status matching.
    pub peeled: usize,
    /// Loops whose carried ciphertexts were packed.
    pub packed: usize,
    /// Loops unrolled by the level-aware factor.
    pub unrolled: usize,
    /// Bootstraps whose target level was tuned down.
    pub tuned: usize,
    /// Static count of `bootstrap` ops in the emitted code (the *dynamic*
    /// count of Table 5 comes from executing the program).
    pub static_bootstraps: usize,
    /// Wall-clock compilation time (Table 6's metric).
    pub compile_time: std::time::Duration,
}

/// Compiles `src` under `config`.
///
/// # Errors
///
/// [`CompileError::DynamicTripNotSupported`] when the DaCapo configuration
/// meets a dynamic trip count; [`CompileError::DepthInfeasible`] when no
/// bootstrap plan can level the program; verification errors on internal
/// invariant violations. A panic inside a pass (an internal-invariant
/// `expect` tripped by a malformed source program) is caught at this
/// boundary and surfaced as [`CompileError::Internal`] so callers never
/// unwind through the compiler.
pub fn compile(
    src: &Function,
    config: CompilerConfig,
    opts: &CompileOptions,
) -> Result<CompileResult, CompileError> {
    compile_with_hooks(src, config, opts, &mut PipelineHooks::default())
}

/// Compiles `src` under `config` with debug-mode instrumentation.
///
/// Identical to [`compile`] except that `hooks` observe (and can verify or
/// perturb) the program at every pass boundary; `hooks.trace` records the
/// passes that ran.
///
/// # Errors
///
/// Everything [`compile`] raises, plus [`CompileError::PassVerify`] when
/// `hooks.verify_each_pass` is set and a pass boundary fails verification.
pub fn compile_with_hooks(
    src: &Function,
    config: CompilerConfig,
    opts: &CompileOptions,
    hooks: &mut PipelineHooks<'_>,
) -> Result<CompileResult, CompileError> {
    // The passes are pure over (&Function, &CompileOptions), so resuming
    // after a caught unwind cannot observe broken state in the caller's
    // data; the hooks' trace may miss the panicking pass's record, which
    // is fine for a diagnostic artifact: AssertUnwindSafe is sound here.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compile_inner(src, config, opts, hooks)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        Err(CompileError::Internal(format!(
            "compiler pass panicked: {msg}"
        )))
    })
}

/// Runs the hook protocol at one pass boundary: apply any injected
/// mutation, verify (traced or typed per [`Pass::is_typed`]), and record
/// the trace entry. Verification failures are attributed to `pass`.
fn pass_boundary(
    f: &mut Function,
    pass: Pass,
    opts: &CompileOptions,
    hooks: &mut PipelineHooks<'_>,
) -> Result<(), CompileError> {
    if let Some((target, mutate)) = hooks.mutate_after.as_mut() {
        if *target == pass {
            mutate(f);
        }
    }
    if hooks.verify_each_pass {
        let check = if pass.is_typed() {
            halo_ir::verify::verify_typed(f, opts.params.max_level)
        } else {
            halo_ir::verify::verify_traced(f)
        };
        check.map_err(|err| CompileError::PassVerify {
            pass: pass.name(),
            err,
        })?;
    }
    hooks.trace.push(PassRecord {
        pass,
        ops_after: f.num_ops(),
        verified: hooks.verify_each_pass,
    });
    Ok(())
}

/// Runs the *traced* prefix of a [`TunePlan`]'s pipeline — everything
/// before level assignment — and returns the traced program plus the
/// (peeled, packed, unrolled) counters.
///
/// The autotuner's branch-and-bound strategy calls this directly: plans
/// that agree on (unroll, pack, peel) share this prefix, and its
/// `traced_floor_us` is an admissible bound on every typed completion.
/// The [`CompilerConfig::Tuned`] arm of [`compile`] is exactly this
/// prefix followed by level assignment (+ optional target tuning), which
/// is what makes the bound sound for whole compiles.
///
/// `UnrollChoice::Full` mirrors the DaCapo arm byte-for-byte (full unroll
/// with *no* peel — peeling first would change the unrolled shape), so a
/// `Tuned` plan can reproduce the DaCapo baseline exactly.
///
/// # Errors
///
/// Same pass errors as [`compile`]'s corresponding prefix (e.g.
/// [`CompileError::DynamicTripNotSupported`] for `Full` on dynamic
/// trips), plus hook verification failures.
pub(crate) fn plan_traced(
    src: &Function,
    plan: TunePlan,
    opts: &CompileOptions,
    hooks: &mut PipelineHooks<'_>,
) -> Result<(Function, usize, usize, usize), CompileError> {
    let mut f = src.clone();
    if plan.unroll == UnrollChoice::Full {
        full_unroll(&mut f)?;
        pass_boundary(&mut f, Pass::FullUnroll, opts, hooks)?;
        dce::run(&mut f);
        pass_boundary(&mut f, Pass::Dce, opts, hooks)?;
        return Ok((f, 0, 0, 0));
    }
    let mut peeled = peel_loops(&mut f);
    peeled += peel_constant_iterations(&mut f, u32::from(plan.peel_extra));
    pass_boundary(&mut f, Pass::Peel, opts, hooks)?;
    let mut unrolled = 0;
    match plan.unroll {
        UnrollChoice::None | UnrollChoice::Full => {}
        UnrollChoice::Heuristic => {
            unrolled = unroll_loops(&mut f, opts.params.max_level, plan.pack);
            pass_boundary(&mut f, Pass::Unroll, opts, hooks)?;
        }
        UnrollChoice::Factor(k) => {
            unrolled = unroll_loops_with_factor(&mut f, u64::from(k));
            pass_boundary(&mut f, Pass::Unroll, opts, hooks)?;
        }
    }
    let mut packed = 0;
    if plan.pack {
        packed = pack_loops(&mut f);
        pass_boundary(&mut f, Pass::Pack, opts, hooks)?;
    }
    dce::run(&mut f);
    pass_boundary(&mut f, Pass::Dce, opts, hooks)?;
    Ok((f, peeled, packed, unrolled))
}

fn compile_inner(
    src: &Function,
    config: CompilerConfig,
    opts: &CompileOptions,
    hooks: &mut PipelineHooks<'_>,
) -> Result<CompileResult, CompileError> {
    let start = Instant::now();

    // Each arm builds its own function from `src`, so nothing is cloned
    // just to be thrown away.
    let (mut f, peeled, packed, unrolled, tuned) = match config {
        CompilerConfig::DaCapo => {
            let mut f = src.clone();
            full_unroll(&mut f)?;
            pass_boundary(&mut f, Pass::FullUnroll, opts, hooks)?;
            dce::run(&mut f);
            pass_boundary(&mut f, Pass::Dce, opts, hooks)?;
            assign_levels(&mut f, opts)?;
            pass_boundary(&mut f, Pass::AssignLevels, opts, hooks)?;
            (f, 0, 0, 0, 0)
        }
        CompilerConfig::Tuned(plan) => {
            // An explicit plan: no heuristics, no cost-aware pack driver —
            // the autotuner already searched those dimensions.
            let (mut f, peeled, packed, unrolled) = plan_traced(src, plan, opts, hooks)?;
            assign_levels(&mut f, opts)?;
            pass_boundary(&mut f, Pass::AssignLevels, opts, hooks)?;
            let mut tuned = 0;
            if plan.tune_targets {
                tuned = tune_bootstrap_targets(&mut f);
                halo_ir::verify::verify_typed(&f, opts.params.max_level)?;
                pass_boundary(&mut f, Pass::Tune, opts, hooks)?;
            }
            (f, peeled, packed, unrolled, tuned)
        }
        _ => {
            // The loop-aware pipeline. Packing is *cost-aware*: packing
            // trades m head bootstraps for one, but its two extra
            // multiplicative levels can force extra in-body resets on deep
            // bodies (the paper's K-means observation, §7.1) — so when the
            // configuration packs, both variants are built and the
            // statically cheaper one wins (ties favor packing).
            let build =
                |do_pack: bool,
                 hooks: &mut PipelineHooks<'_>|
                 -> Result<(Function, usize, usize, usize, usize), CompileError> {
                    let mut f = src.clone();
                    let peeled = peel_loops(&mut f);
                    pass_boundary(&mut f, Pass::Peel, opts, hooks)?;
                    let mut unrolled = 0;
                    if config.unrolls() {
                        unrolled = unroll_loops(&mut f, opts.params.max_level, do_pack);
                        pass_boundary(&mut f, Pass::Unroll, opts, hooks)?;
                    }
                    let mut packed = 0;
                    if do_pack {
                        packed = pack_loops(&mut f);
                        pass_boundary(&mut f, Pass::Pack, opts, hooks)?;
                    }
                    dce::run(&mut f);
                    pass_boundary(&mut f, Pass::Dce, opts, hooks)?;
                    assign_levels(&mut f, opts)?;
                    pass_boundary(&mut f, Pass::AssignLevels, opts, hooks)?;
                    let mut tuned = 0;
                    if config.tunes() {
                        tuned = tune_bootstrap_targets(&mut f);
                        halo_ir::verify::verify_typed(&f, opts.params.max_level)?;
                        pass_boundary(&mut f, Pass::Tune, opts, hooks)?;
                    }
                    Ok((f, peeled, packed, unrolled, tuned))
                };
            if config.packs() {
                let with_pack = build(true, hooks)?;
                if with_pack.2 == 0 {
                    // Nothing was packable; the variants are identical.
                    with_pack
                } else {
                    let without = build(false, hooks)?;
                    let cp = estimate_cost_us(&with_pack.0, ASSUMED_TRIPS);
                    let cu = estimate_cost_us(&without.0, ASSUMED_TRIPS);
                    if cp <= cu {
                        with_pack
                    } else {
                        without
                    }
                }
            } else {
                build(false, hooks)?
            }
        }
    };
    dce::run(&mut f);
    halo_ir::verify::verify_typed(&f, opts.params.max_level)?;
    pass_boundary(&mut f, Pass::FinalDce, opts, hooks)?;

    let static_bootstraps = f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. }));
    Ok(CompileResult {
        function: f,
        config,
        peeled,
        packed,
        unrolled,
        tuned,
        static_bootstraps,
        compile_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ckks::CkksParams;
    use halo_ir::op::TripCount;
    use halo_ir::FunctionBuilder;

    fn opts() -> CompileOptions {
        let mut o = CompileOptions::new(CkksParams::test_small());
        o.params.poly_degree = 64; // 32 slots
        o
    }

    /// Figure-2-style program: 2 carried vars, one plain init, depth 2.
    fn sample(trip: TripCount) -> Function {
        let mut b = FunctionBuilder::new("fig2", 32);
        let x = b.input_cipher("x");
        let y0 = b.input_cipher("y");
        let a0 = b.const_splat(1.0);
        let r = b.for_loop(trip, &[y0, a0], 4, |b, args| {
            let x2 = b.mul(x, args[0]);
            let y2 = b.mul(x2, x2);
            let a2 = b.add(args[1], y2);
            vec![y2, a2]
        });
        b.ret(&r);
        b.finish()
    }

    #[test]
    fn all_configs_compile_constant_trip() {
        // 12 iterations × depth 2 = 24 > L: even DaCapo needs bootstraps.
        for config in CompilerConfig::ALL {
            let r = compile(&sample(TripCount::Constant(12)), config, &opts())
                .unwrap_or_else(|e| panic!("{}: {e}", config.name()));
            assert!(r.static_bootstraps > 0, "{}", config.name());
        }
    }

    #[test]
    fn dacapo_rejects_dynamic_trip_halo_accepts() {
        let src = sample(TripCount::dynamic("n"));
        let err = compile(&src, CompilerConfig::DaCapo, &opts()).unwrap_err();
        assert!(matches!(err, CompileError::DynamicTripNotSupported { .. }));
        for config in [
            CompilerConfig::TypeMatched,
            CompilerConfig::Packing,
            CompilerConfig::PackingUnrolling,
            CompilerConfig::Halo,
        ] {
            compile(&src, config, &opts()).unwrap_or_else(|e| panic!("{}: {e}", config.name()));
        }
    }

    #[test]
    fn pass_counters_reflect_configuration() {
        let src = sample(TripCount::dynamic("n"));
        let tm = compile(&src, CompilerConfig::TypeMatched, &opts()).unwrap();
        assert_eq!(tm.peeled, 1);
        assert_eq!(tm.packed, 0);
        assert_eq!(tm.unrolled, 0);
        assert_eq!(tm.tuned, 0);
        // Two carried cipher vars → 2 head bootstraps.
        assert_eq!(tm.static_bootstraps, 2);

        let pk = compile(&src, CompilerConfig::Packing, &opts()).unwrap();
        assert_eq!(pk.packed, 1);
        // One head bootstrap in the loop + one entry reset for the
        // post-loop unpack.
        assert_eq!(pk.static_bootstraps, 2);

        let pu = compile(&src, CompilerConfig::PackingUnrolling, &opts()).unwrap();
        assert_eq!(pu.packed, 2, "main and epilogue loops both packed");
        assert_eq!(pu.unrolled, 1);
        // A head bootstrap per loop plus entry resets for the inter-loop
        // and post-loop unpacks.
        assert!(
            pu.static_bootstraps >= 3 && pu.static_bootstraps <= 4,
            "got {}",
            pu.static_bootstraps
        );

        let halo = compile(&src, CompilerConfig::Halo, &opts()).unwrap();
        assert!(halo.tuned >= 1, "shallow body leaves slack to tune");
    }

    #[test]
    fn pass_panics_surface_as_internal_errors() {
        use halo_ir::func::BlockId;
        use halo_ir::types::{CtType, LEVEL_UNSET};
        // A malformed source program the verifier never saw: a loop whose
        // body block id dangles. Passes indexing that block panic; the
        // `compile` boundary must convert the unwind into an error.
        let mut f = Function::new("bad", 32);
        let entry = f.entry;
        let cipher = CtType::cipher(LEVEL_UNSET);
        let x = f.push_op1(entry, Opcode::Input { name: "x".into() }, vec![], cipher);
        f.push_op(
            entry,
            Opcode::For {
                trip: TripCount::Constant(3),
                body: BlockId(99),
                num_elems: 1,
            },
            vec![x],
            &[cipher],
        );
        f.push_op(entry, Opcode::Return, vec![], &[]);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let results: Vec<_> = CompilerConfig::ALL
            .into_iter()
            .map(|config| compile(&f, config, &opts()))
            .collect();
        std::panic::set_hook(prev);
        for (config, r) in CompilerConfig::ALL.into_iter().zip(results) {
            let err = r.expect_err(config.name());
            assert!(
                matches!(err, CompileError::Internal(_) | CompileError::Verify(_)),
                "{}: {err}",
                config.name()
            );
        }
    }

    #[test]
    fn hooks_trace_records_passes_in_order() {
        let src = sample(TripCount::dynamic("n"));
        let mut hooks = PipelineHooks::verifying();
        compile_with_hooks(&src, CompilerConfig::Halo, &opts(), &mut hooks).unwrap();
        let passes: Vec<Pass> = hooks.trace.iter().map(|r| r.pass).collect();
        // The cost-aware packing driver builds the packed variant first;
        // the prefix must be the loop-aware pipeline in order, ending with
        // the final clean-up.
        assert_eq!(
            &passes[..6],
            &[
                Pass::Peel,
                Pass::Unroll,
                Pass::Pack,
                Pass::Dce,
                Pass::AssignLevels,
                Pass::Tune
            ]
        );
        assert_eq!(*passes.last().unwrap(), Pass::FinalDce);
        assert!(hooks.trace.iter().all(|r| r.verified && r.ops_after > 0));

        // The DaCapo arm has its own trace shape.
        let mut hooks = PipelineHooks::verifying();
        compile_with_hooks(
            &sample(TripCount::Constant(4)),
            CompilerConfig::DaCapo,
            &opts(),
            &mut hooks,
        )
        .unwrap();
        let passes: Vec<Pass> = hooks.trace.iter().map(|r| r.pass).collect();
        assert_eq!(
            passes,
            vec![
                Pass::FullUnroll,
                Pass::Dce,
                Pass::AssignLevels,
                Pass::FinalDce
            ]
        );
    }

    #[test]
    fn injected_bad_mutation_is_localized_to_the_offending_pass() {
        use halo_ir::func::OpId;
        let src = sample(TripCount::dynamic("n"));

        // Break the traced program right after peeling: drop an operand
        // from the first `For` op, an arity mismatch the structural
        // verifier must attribute to "peel".
        let mut drop_for_operand = |f: &mut Function| {
            let mut target: Option<OpId> = None;
            f.walk_ops(|_, id| {
                if target.is_none() && matches!(f.op(id).opcode, Opcode::For { .. }) {
                    target = Some(id);
                }
            });
            let id = target.expect("generated program has a loop");
            f.op_mut(id).operands.pop();
        };
        let mut hooks = PipelineHooks {
            verify_each_pass: true,
            mutate_after: Some((Pass::Peel, &mut drop_for_operand)),
            trace: Vec::new(),
        };
        let err = compile_with_hooks(&src, CompilerConfig::Halo, &opts(), &mut hooks).unwrap_err();
        match err {
            CompileError::PassVerify { pass, .. } => assert_eq!(pass, "peel"),
            other => panic!("expected PassVerify, got {other}"),
        }

        // Break the typed program after level assignment: corrupt the
        // first op result's level. The typed verifier must attribute the
        // failure to "levels".
        let mut corrupt_level = |f: &mut Function| {
            let mut target: Option<OpId> = None;
            f.walk_ops(|_, id| {
                if target.is_none() && !f.op(id).results.is_empty() {
                    target = Some(id);
                }
            });
            let id = target.expect("program has a result-producing op");
            let v = f.op(id).results[0];
            f.value_mut(v).ty.level = 999;
        };
        let mut hooks = PipelineHooks {
            verify_each_pass: true,
            mutate_after: Some((Pass::AssignLevels, &mut corrupt_level)),
            trace: Vec::new(),
        };
        let err = compile_with_hooks(&src, CompilerConfig::Halo, &opts(), &mut hooks).unwrap_err();
        match err {
            CompileError::PassVerify { pass, .. } => assert_eq!(pass, "levels"),
            other => panic!("expected PassVerify, got {other}"),
        }
    }

    #[test]
    fn pass_names_round_trip() {
        for p in Pass::ALL {
            assert_eq!(Pass::from_name(p.name()), Some(p));
        }
        assert_eq!(Pass::from_name("nonsense"), None);
    }

    #[test]
    fn dacapo_code_grows_with_iterations_halo_stays_constant() {
        // Table 7's structure: DaCapo recompiles (and grows) per iteration
        // count; HALO compiles the dynamic-trip program once, so its code
        // size is independent of the iteration count by construction.
        use halo_ir::print::code_size_bytes;
        let mut dacapo_sizes = Vec::new();
        for n in [4u64, 8, 12] {
            let src = sample(TripCount::Constant(n));
            dacapo_sizes.push(code_size_bytes(
                &compile(&src, CompilerConfig::DaCapo, &opts())
                    .unwrap()
                    .function,
            ));
        }
        assert!(
            dacapo_sizes[2] > dacapo_sizes[1] && dacapo_sizes[1] > dacapo_sizes[0],
            "{dacapo_sizes:?}"
        );
        // DaCapo grows roughly linearly in the iteration count.
        assert!(
            dacapo_sizes[2] * 10 > dacapo_sizes[0] * 25,
            "expected ~linear growth: {dacapo_sizes:?}"
        );
        // HALO's size is a single constant for the dynamic-trip program —
        // the crossover vs DaCapo comes at larger iteration counts (the
        // paper uses 40; Table 7 is regenerated by the bench harness).
        let halo = compile(
            &sample(TripCount::dynamic("n")),
            CompilerConfig::Halo,
            &opts(),
        )
        .unwrap();
        assert!(code_size_bytes(&halo.function) > 0);
    }
}
