//! The configuration-driven compilation driver.

use std::time::Instant;

use halo_ir::op::Opcode;
use halo_ir::Function;

use crate::config::{CompileOptions, CompilerConfig};
use crate::cost_est::estimate_cost_us;
use crate::dacapo::full_unroll;
use crate::dce;
use crate::error::CompileError;
use crate::pack::pack_loops;
use crate::peel::peel_loops;
use crate::scale::assign_levels;
use crate::tune::tune_bootstrap_targets;
use crate::unroll::unroll_loops;

/// Dynamic trip counts are assumed to run this many iterations when the
/// pipeline estimates costs (the paper's evaluation iteration count).
const ASSUMED_TRIPS: u64 = 40;

/// The outcome of compiling a traced program under one configuration.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The fully typed, executable program.
    pub function: Function,
    /// Which configuration produced it.
    pub config: CompilerConfig,
    /// Loops peeled for status matching.
    pub peeled: usize,
    /// Loops whose carried ciphertexts were packed.
    pub packed: usize,
    /// Loops unrolled by the level-aware factor.
    pub unrolled: usize,
    /// Bootstraps whose target level was tuned down.
    pub tuned: usize,
    /// Static count of `bootstrap` ops in the emitted code (the *dynamic*
    /// count of Table 5 comes from executing the program).
    pub static_bootstraps: usize,
    /// Wall-clock compilation time (Table 6's metric).
    pub compile_time: std::time::Duration,
}

/// Compiles `src` under `config`.
///
/// # Errors
///
/// [`CompileError::DynamicTripNotSupported`] when the DaCapo configuration
/// meets a dynamic trip count; [`CompileError::DepthInfeasible`] when no
/// bootstrap plan can level the program; verification errors on internal
/// invariant violations. A panic inside a pass (an internal-invariant
/// `expect` tripped by a malformed source program) is caught at this
/// boundary and surfaced as [`CompileError::Internal`] so callers never
/// unwind through the compiler.
pub fn compile(
    src: &Function,
    config: CompilerConfig,
    opts: &CompileOptions,
) -> Result<CompileResult, CompileError> {
    // The passes are pure over (&Function, &CompileOptions), so resuming
    // after a caught unwind cannot observe broken state in the caller's
    // data: AssertUnwindSafe is sound here.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compile_inner(src, config, opts)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        Err(CompileError::Internal(format!(
            "compiler pass panicked: {msg}"
        )))
    })
}

fn compile_inner(
    src: &Function,
    config: CompilerConfig,
    opts: &CompileOptions,
) -> Result<CompileResult, CompileError> {
    let start = Instant::now();

    // Each arm builds its own function from `src`, so nothing is cloned
    // just to be thrown away.
    let (mut f, peeled, packed, unrolled, tuned) = match config {
        CompilerConfig::DaCapo => {
            let mut f = src.clone();
            full_unroll(&mut f)?;
            dce::run(&mut f);
            assign_levels(&mut f, opts)?;
            (f, 0, 0, 0, 0)
        }
        _ => {
            // The loop-aware pipeline. Packing is *cost-aware*: packing
            // trades m head bootstraps for one, but its two extra
            // multiplicative levels can force extra in-body resets on deep
            // bodies (the paper's K-means observation, §7.1) — so when the
            // configuration packs, both variants are built and the
            // statically cheaper one wins (ties favor packing).
            let build =
                |do_pack: bool| -> Result<(Function, usize, usize, usize, usize), CompileError> {
                    let mut f = src.clone();
                    let peeled = peel_loops(&mut f);
                    let mut unrolled = 0;
                    if config.unrolls() {
                        unrolled = unroll_loops(&mut f, opts.params.max_level, do_pack);
                    }
                    let mut packed = 0;
                    if do_pack {
                        packed = pack_loops(&mut f);
                    }
                    dce::run(&mut f);
                    assign_levels(&mut f, opts)?;
                    let mut tuned = 0;
                    if config.tunes() {
                        tuned = tune_bootstrap_targets(&mut f);
                        halo_ir::verify::verify_typed(&f, opts.params.max_level)?;
                    }
                    Ok((f, peeled, packed, unrolled, tuned))
                };
            if config.packs() {
                let with_pack = build(true)?;
                if with_pack.2 == 0 {
                    // Nothing was packable; the variants are identical.
                    with_pack
                } else {
                    let without = build(false)?;
                    let cp = estimate_cost_us(&with_pack.0, ASSUMED_TRIPS);
                    let cu = estimate_cost_us(&without.0, ASSUMED_TRIPS);
                    if cp <= cu {
                        with_pack
                    } else {
                        without
                    }
                }
            } else {
                build(false)?
            }
        }
    };
    dce::run(&mut f);
    halo_ir::verify::verify_typed(&f, opts.params.max_level)?;

    let static_bootstraps = f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. }));
    Ok(CompileResult {
        function: f,
        config,
        peeled,
        packed,
        unrolled,
        tuned,
        static_bootstraps,
        compile_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ckks::CkksParams;
    use halo_ir::op::TripCount;
    use halo_ir::FunctionBuilder;

    fn opts() -> CompileOptions {
        let mut o = CompileOptions::new(CkksParams::test_small());
        o.params.poly_degree = 64; // 32 slots
        o
    }

    /// Figure-2-style program: 2 carried vars, one plain init, depth 2.
    fn sample(trip: TripCount) -> Function {
        let mut b = FunctionBuilder::new("fig2", 32);
        let x = b.input_cipher("x");
        let y0 = b.input_cipher("y");
        let a0 = b.const_splat(1.0);
        let r = b.for_loop(trip, &[y0, a0], 4, |b, args| {
            let x2 = b.mul(x, args[0]);
            let y2 = b.mul(x2, x2);
            let a2 = b.add(args[1], y2);
            vec![y2, a2]
        });
        b.ret(&r);
        b.finish()
    }

    #[test]
    fn all_configs_compile_constant_trip() {
        // 12 iterations × depth 2 = 24 > L: even DaCapo needs bootstraps.
        for config in CompilerConfig::ALL {
            let r = compile(&sample(TripCount::Constant(12)), config, &opts())
                .unwrap_or_else(|e| panic!("{}: {e}", config.name()));
            assert!(r.static_bootstraps > 0, "{}", config.name());
        }
    }

    #[test]
    fn dacapo_rejects_dynamic_trip_halo_accepts() {
        let src = sample(TripCount::dynamic("n"));
        let err = compile(&src, CompilerConfig::DaCapo, &opts()).unwrap_err();
        assert!(matches!(err, CompileError::DynamicTripNotSupported { .. }));
        for config in [
            CompilerConfig::TypeMatched,
            CompilerConfig::Packing,
            CompilerConfig::PackingUnrolling,
            CompilerConfig::Halo,
        ] {
            compile(&src, config, &opts()).unwrap_or_else(|e| panic!("{}: {e}", config.name()));
        }
    }

    #[test]
    fn pass_counters_reflect_configuration() {
        let src = sample(TripCount::dynamic("n"));
        let tm = compile(&src, CompilerConfig::TypeMatched, &opts()).unwrap();
        assert_eq!(tm.peeled, 1);
        assert_eq!(tm.packed, 0);
        assert_eq!(tm.unrolled, 0);
        assert_eq!(tm.tuned, 0);
        // Two carried cipher vars → 2 head bootstraps.
        assert_eq!(tm.static_bootstraps, 2);

        let pk = compile(&src, CompilerConfig::Packing, &opts()).unwrap();
        assert_eq!(pk.packed, 1);
        // One head bootstrap in the loop + one entry reset for the
        // post-loop unpack.
        assert_eq!(pk.static_bootstraps, 2);

        let pu = compile(&src, CompilerConfig::PackingUnrolling, &opts()).unwrap();
        assert_eq!(pu.packed, 2, "main and epilogue loops both packed");
        assert_eq!(pu.unrolled, 1);
        // A head bootstrap per loop plus entry resets for the inter-loop
        // and post-loop unpacks.
        assert!(
            pu.static_bootstraps >= 3 && pu.static_bootstraps <= 4,
            "got {}",
            pu.static_bootstraps
        );

        let halo = compile(&src, CompilerConfig::Halo, &opts()).unwrap();
        assert!(halo.tuned >= 1, "shallow body leaves slack to tune");
    }

    #[test]
    fn pass_panics_surface_as_internal_errors() {
        use halo_ir::func::BlockId;
        use halo_ir::types::{CtType, LEVEL_UNSET};
        // A malformed source program the verifier never saw: a loop whose
        // body block id dangles. Passes indexing that block panic; the
        // `compile` boundary must convert the unwind into an error.
        let mut f = Function::new("bad", 32);
        let entry = f.entry;
        let cipher = CtType::cipher(LEVEL_UNSET);
        let x = f.push_op1(entry, Opcode::Input { name: "x".into() }, vec![], cipher);
        f.push_op(
            entry,
            Opcode::For {
                trip: TripCount::Constant(3),
                body: BlockId(99),
                num_elems: 1,
            },
            vec![x],
            &[cipher],
        );
        f.push_op(entry, Opcode::Return, vec![], &[]);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let results: Vec<_> = CompilerConfig::ALL
            .into_iter()
            .map(|config| compile(&f, config, &opts()))
            .collect();
        std::panic::set_hook(prev);
        for (config, r) in CompilerConfig::ALL.into_iter().zip(results) {
            let err = r.expect_err(config.name());
            assert!(
                matches!(err, CompileError::Internal(_) | CompileError::Verify(_)),
                "{}: {err}",
                config.name()
            );
        }
    }

    #[test]
    fn dacapo_code_grows_with_iterations_halo_stays_constant() {
        // Table 7's structure: DaCapo recompiles (and grows) per iteration
        // count; HALO compiles the dynamic-trip program once, so its code
        // size is independent of the iteration count by construction.
        use halo_ir::print::code_size_bytes;
        let mut dacapo_sizes = Vec::new();
        for n in [4u64, 8, 12] {
            let src = sample(TripCount::Constant(n));
            dacapo_sizes.push(code_size_bytes(
                &compile(&src, CompilerConfig::DaCapo, &opts())
                    .unwrap()
                    .function,
            ));
        }
        assert!(
            dacapo_sizes[2] > dacapo_sizes[1] && dacapo_sizes[1] > dacapo_sizes[0],
            "{dacapo_sizes:?}"
        );
        // DaCapo grows roughly linearly in the iteration count.
        assert!(
            dacapo_sizes[2] * 10 > dacapo_sizes[0] * 25,
            "expected ~linear growth: {dacapo_sizes:?}"
        );
        // HALO's size is a single constant for the dynamic-trip program —
        // the crossover vs DaCapo comes at larger iteration counts (the
        // paper uses 40; Table 7 is regenerated by the bench harness).
        let halo = compile(
            &sample(TripCount::dynamic("n")),
            CompilerConfig::Halo,
            &opts(),
        )
        .unwrap();
        assert!(code_size_bytes(&halo.function) > 0);
    }
}
