//! Materializing scale management + loop type matching (Algorithm 1).
//!
//! [`assign_levels`] turns a traced (level-free) program into a fully typed
//! one by walking every block in execution order and, per op, applying the
//! [`crate::levelsim::plan_op`] plan: inserting `rescale`/`modswitch` ops,
//! rewriting operands, and stamping result types.
//!
//! `For` ops get the paper's loop-enabled code generation (§5.2):
//!
//! 1. cipher init operands are coerced to the floor `(level 0, degree 1)`
//!    — the "modswitch the loop inputs" of Algorithm 1 lines 6–8;
//! 2. loop-carried body arguments are typed at the floor and a
//!    `bootstrap(L)` is inserted for each at the body head — lines 13–16;
//! 3. the body is materialized recursively (with DaCapo-style in-body
//!    placement first, §5.3, if its depth exceeds the budget);
//! 4. yields are coerced back to the floor — lines 9–11;
//! 5. the loop results are typed at the floor, making the loop
//!    *type-matched*: init ≡ arg ≡ yield ≡ result for every carried
//!    variable.

use halo_ckks::CostModel;
use halo_ir::analysis::{live_ins, propagate_statuses};
use halo_ir::func::{BlockId, Function, OpId, ValueId};
use halo_ir::op::Opcode;
use halo_ir::types::{CtType, Status};
use halo_ir::verify::verify_typed;

use crate::config::CompileOptions;
use crate::error::CompileError;
use crate::levelsim::{plan_op, StepPlan, TypeEnv, FLOOR_LEVEL};
use crate::placement::{ensure_feasible, replace_uses_from};

struct FnTypes<'a>(&'a Function);

impl TypeEnv for FnTypes<'_> {
    fn get(&self, v: ValueId) -> CtType {
        self.0.ty(v)
    }
}

/// Assigns levels to the whole function: normalizes statuses and plaintext
/// types, types cipher inputs at the maximum level, materializes every
/// block (inserting all level-management ops), and verifies the result.
///
/// # Errors
///
/// Returns [`CompileError::DepthInfeasible`] if some block cannot be
/// leveled even with bootstrap placement, or a verification error on an
/// internal invariant violation.
pub fn assign_levels(f: &mut Function, opts: &CompileOptions) -> Result<(), CompileError> {
    propagate_statuses(f);
    normalize_plain_types(f);
    let max_level = opts.params.max_level;
    for input in f.inputs() {
        if f.ty(input).status == Status::Cipher {
            f.set_ty(input, CtType::cipher(max_level));
        }
    }
    let entry = f.entry;
    materialize_block(f, entry, opts)?;
    verify_typed(f, max_level)?;
    Ok(())
}

/// Gives every plain-status value the canonical plaintext type
/// `(plain, level 0, degree 1)` so type equality at loop boundaries works.
pub fn normalize_plain_types(f: &mut Function) {
    for i in 0..f.num_values() {
        let v = ValueId(i as u32);
        if f.value(v).ty.status == Status::Plain {
            f.set_ty(v, CtType::plain(0));
        }
    }
}

/// Materializes one block: placement (if needed) then per-op leveling.
fn materialize_block(
    f: &mut Function,
    block: BlockId,
    opts: &CompileOptions,
) -> Result<(), CompileError> {
    ensure_feasible(f, block, opts)?;
    let cost = CostModel::new();
    let max_level = opts.params.max_level;

    let mut i = 0usize;
    while i < f.block(block).ops.len() {
        let op_id = f.block(block).ops[i];
        if let Opcode::For { .. } = f.op(op_id).opcode {
            i = materialize_loop(f, block, i, opts)?;
            continue;
        }
        let op = f.op(op_id).clone();
        let plan = plan_op(op_id, &op, &FnTypes(f), &cost, max_level).map_err(|u| {
            CompileError::DepthInfeasible {
                op: Some(u.op),
                detail: "underflow after placement — internal invariant violation".into(),
            }
        })?;
        i = apply_plan(f, block, i, op_id, &plan);
        i += 1;
    }
    Ok(())
}

/// Applies a step plan at `block[i]` (which holds `op_id`): inserts
/// coercion ops before it, rewrites operands, stamps result types.
/// Returns the (possibly shifted) index of `op_id`.
fn apply_plan(
    f: &mut Function,
    block: BlockId,
    mut i: usize,
    op_id: OpId,
    plan: &StepPlan,
) -> usize {
    use std::collections::HashMap;
    let mut renames: HashMap<ValueId, ValueId> = HashMap::new();
    for c in &plan.coercions {
        let mut cur = *renames.get(&c.value).unwrap_or(&c.value);
        if c.rescale {
            let t = f.ty(cur);
            debug_assert_eq!(t.degree, 2);
            let v2 = f.insert_op1(
                block,
                i,
                Opcode::Rescale,
                vec![cur],
                CtType::cipher(t.level - 1),
            );
            i += 1;
            replace_uses_from(f, block, i, cur, v2);
            renames.insert(c.value, v2);
            cur = v2;
        }
        if let Some(target) = c.modswitch_to {
            let t = f.ty(cur);
            if t.level > target {
                let v3 = f.insert_op1(
                    block,
                    i,
                    Opcode::ModSwitch {
                        down: t.level - target,
                    },
                    vec![cur],
                    CtType {
                        status: Status::Cipher,
                        level: target,
                        degree: t.degree,
                    },
                );
                i += 1;
                // Per-use: rewrite only this op's operand slot.
                f.op_mut(op_id).operands[c.operand_index] = v3;
            }
        }
    }
    let results = f.op(op_id).results.clone();
    for (&r, &t) in results.iter().zip(&plan.result_tys) {
        f.set_ty(r, t);
    }
    i
}

/// Coerces the value at `block[.. pos]`'s scope to `(floor, degree 1)`,
/// inserting ops at `pos` and returning `(new_value, ops_inserted)`.
fn coerce_to_floor(f: &mut Function, block: BlockId, pos: usize, v: ValueId) -> (ValueId, usize) {
    let mut cur = v;
    let mut inserted = 0usize;
    let t = f.ty(cur);
    if t.degree == 2 {
        cur = f.insert_op1(
            block,
            pos + inserted,
            Opcode::Rescale,
            vec![cur],
            CtType::cipher(t.level - 1),
        );
        inserted += 1;
        replace_uses_from(f, block, pos + inserted, v, cur);
    }
    let t = f.ty(cur);
    if t.level > FLOOR_LEVEL {
        cur = f.insert_op1(
            block,
            pos + inserted,
            Opcode::ModSwitch {
                down: t.level - FLOOR_LEVEL,
            },
            vec![cur],
            CtType::cipher(FLOOR_LEVEL),
        );
        inserted += 1;
    }
    (cur, inserted)
}

/// Materializes a `For` op at `block[i]`: Algorithm 1 plus recursion.
/// Returns the index just past the loop op.
fn materialize_loop(
    f: &mut Function,
    block: BlockId,
    mut i: usize,
    opts: &CompileOptions,
) -> Result<usize, CompileError> {
    let max_level = opts.params.max_level;
    let op_id = f.block(block).ops[i];
    let body = f.for_body(op_id);

    // Rescale any degree-2 cipher live-in once, outside the loop, so the
    // body never re-rescales it per iteration.
    for li in live_ins(f, body) {
        let t = f.ty(li);
        if t.status == Status::Cipher && t.degree == 2 {
            let v2 = f.insert_op1(
                block,
                i,
                Opcode::Rescale,
                vec![li],
                CtType::cipher(t.level - 1),
            );
            i += 1;
            replace_uses_from(f, block, i, li, v2);
        }
    }

    // 1. Floor the cipher init operands (Algorithm 1, lines 6–8).
    let n_inits = f.op(op_id).operands.len();
    for k in 0..n_inits {
        let init = f.op(op_id).operands[k];
        if f.ty(init).status == Status::Cipher {
            let (new_v, inserted) = coerce_to_floor(f, block, i, init);
            i += inserted;
            f.op_mut(op_id).operands[k] = new_v;
        }
    }

    // 2. Type the body args at the floor; insert head bootstraps
    //    (lines 13–16).
    let args = f.block(body).args.clone();
    let mut head = 0usize;
    for &arg in &args {
        if f.ty(arg).status == Status::Cipher {
            f.set_ty(arg, CtType::cipher(FLOOR_LEVEL));
            let bs = f.insert_op(
                body,
                head,
                Opcode::Bootstrap { target: max_level },
                vec![arg],
                &[CtType::cipher(max_level)],
            );
            head += 1;
            let new_v = f.op(bs).results[0];
            f.replace_uses_in_block(body, arg, new_v, Some(bs));
        } else {
            f.set_ty(arg, CtType::plain(0));
        }
    }

    // 3. Materialize the body (placement first if its depth exceeds L).
    materialize_block(f, body, opts)?;

    // 4. Coerce yields back to the floor (lines 9–11).
    let term = f
        .terminator(body)
        .ok_or_else(|| CompileError::Internal("loop body lost its terminator".into()))?;
    let n_yields = f.op(term).operands.len();
    for k in 0..n_yields {
        let y = f.op(term).operands[k];
        if f.ty(y).status == Status::Cipher {
            let pos = f.block(body).ops.len() - 1;
            let (new_v, _) = coerce_to_floor(f, body, pos, y);
            let term = f.terminator(body).expect("still terminated");
            f.op_mut(term).operands[k] = new_v;
        }
    }

    // 5. Type the loop results at the floor (type-matched loop complete).
    let results = f.op(op_id).results.clone();
    for (&r, &arg) in results.iter().zip(&args) {
        let t = f.ty(arg);
        f.set_ty(r, t);
    }

    Ok(f.position_in_block(block, op_id)
        .expect("loop op still in block")
        + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ckks::CkksParams;
    use halo_ir::op::TripCount;
    use halo_ir::FunctionBuilder;

    fn opts() -> CompileOptions {
        CompileOptions::new(CkksParams::test_small())
    }

    #[test]
    fn straight_line_program_levels() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let m = b.mul(x, y);
        let k = b.const_splat(2.0);
        let s = b.mul(m, k);
        let r = b.add(s, y);
        b.ret(&[r]);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        // m = x*y at (16,2); rescaled to (15,1) for s = m*k at (15,2);
        // add with y requires rescale of s to (14,1) and modswitch of y.
        assert_eq!(f.ty(r), CtType::cipher(14));
    }

    #[test]
    fn simple_loop_becomes_type_matched() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let w = b.input_cipher("w");
        let res = b.for_loop(TripCount::dynamic("n"), &[w], 4, |b, a| {
            let p = b.mul(x, a[0]);
            vec![b.add(a[0], p)]
        });
        b.ret(&res);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        // The verifier inside assign_levels already checks the
        // type-matched property; spot-check the shape too.
        let loop_op = f.loops_in_block(f.entry)[0];
        let body = f.for_body(loop_op);
        assert_eq!(f.ty(f.block(body).args[0]), CtType::cipher(0));
        assert_eq!(f.ty(f.op(loop_op).results[0]), CtType::cipher(0));
        // Exactly one head bootstrap for the one carried variable.
        let boots = f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. }));
        assert_eq!(boots, 1);
        // Yield floored by a modswitch at the end of the body.
        let term = f.terminator(body).unwrap();
        let y = f.op(term).operands[0];
        assert_eq!(f.ty(y), CtType::cipher(0));
    }

    #[test]
    fn two_carried_vars_get_two_head_bootstraps() {
        // Paper Challenge B-1: one bootstrap per loop-carried ciphertext.
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let y0 = b.input_cipher("y0");
        let a0 = b.input_cipher("a0");
        let res = b.for_loop(TripCount::dynamic("n"), &[y0, a0], 4, |b, args| {
            let x2 = b.mul(x, args[0]);
            let y2 = b.mul(x2, x2);
            let a2 = b.add(args[1], y2);
            vec![y2, a2]
        });
        b.ret(&res);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        assert_eq!(f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. })), 2);
    }

    #[test]
    fn deep_loop_body_gets_in_body_placement() {
        // Body depth 20 > L = 16: one extra in-body bootstrap (§5.3).
        let mut b = FunctionBuilder::new("t", 8);
        let w = b.input_cipher("w");
        let res = b.for_loop(TripCount::dynamic("n"), &[w], 4, |b, a| {
            let mut v = a[0];
            for _ in 0..20 {
                v = b.mul(v, v);
            }
            vec![v]
        });
        b.ret(&res);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        let boots = f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. }));
        assert_eq!(boots, 2, "one head bootstrap + one in-body reset");
    }

    #[test]
    fn nested_loops_level_recursively() {
        let mut b = FunctionBuilder::new("t", 8);
        let w = b.input_cipher("w");
        let res = b.for_loop(TripCount::dynamic("outer"), &[w], 4, |b, outer| {
            let inner = b.for_loop(TripCount::dynamic("inner"), &[outer[0]], 4, |b, a| {
                let sq = b.mul(a[0], a[0]);
                vec![sq]
            });
            let half = b.const_splat(0.5);
            vec![b.mul(inner[0], half)]
        });
        b.ret(&res);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        // Outer carried var + inner carried var ⇒ 2 head bootstraps, plus
        // possibly one after the inner loop (its result is at level 0 and
        // is multiplied afterwards).
        let boots = f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. }));
        assert!(
            boots >= 3,
            "outer head + inner head + post-inner, got {boots}"
        );
    }

    #[test]
    fn plain_carried_variable_stays_plain() {
        // A carried variable never touched by cipher ops stays plain and
        // needs no bootstrap (paper §5.1's dead-code observation).
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let c0 = b.const_splat(1.0);
        let res = b.for_loop(TripCount::dynamic("n"), &[x, c0], 4, |b, args| {
            let two = b.const_splat(2.0);
            let c2 = b.mul(args[1], two); // plain × plain
            let x2 = b.mul(args[0], args[0]);
            vec![x2, c2]
        });
        b.ret(&res);
        let mut f = b.finish();
        assign_levels(&mut f, &opts()).unwrap();
        let loop_op = f.loops_in_block(f.entry)[0];
        let body = f.for_body(loop_op);
        assert_eq!(f.ty(f.block(body).args[1]).status, Status::Plain);
        assert_eq!(f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. })), 1);
    }
}
