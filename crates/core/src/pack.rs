//! Loop-carried ciphertext packing (paper §6.1, Solution B-1).
//!
//! Instead of bootstrapping `m` loop-carried ciphertexts per iteration, the
//! pass packs them into a single ciphertext so one bootstrap suffices:
//!
//! - **pack**: each carried value is masked into its own slot window
//!   (`multcp` with a 0/1 mask plaintext) and the windows are summed
//!   (`addcc` tree);
//! - **unpack**: each window is masked back out and re-replicated across
//!   all slots by a rotate-and-add doubling ladder (each original
//!   ciphertext stores its `num_elems`-sized value vector cyclically
//!   repeated, so re-replication restores the original layout exactly).
//!
//! Packing costs one multiplicative level on each side (`depth_limit`
//! becomes `L − 2`, §6.2) and is applied only when at least two carried
//! variables are ciphertexts and all windows fit in one ciphertext.

use std::collections::HashMap;

use halo_ir::func::{BlockId, Function, OpId, ValueId};
use halo_ir::op::{ConstValue, Opcode};
use halo_ir::subst::clone_body_ops;
use halo_ir::types::{CtType, Status};

// === Slot-level pack/unpack ================================================
//
// The serving layer batches *requests* the way this pass batches
// loop-carried variables: disjoint slot windows, combined with the same
// mask/rotate algebra. These helpers are that algebra lifted to plain
// slot vectors (what the sim backend's value semantics — and the real
// scheme's canonical embedding — compute slotwise), so `runtime::serve`
// packs many jobs' inputs into one ciphertext-sized vector before
// encryption and unpacks per-job windows after decryption, and tests can
// cross-check the IR pass against a closed-form reference.

/// The 0/1 window mask selecting slots `lo..hi` — the slot-vector value
/// of `ConstValue::Mask { lo, hi }`.
#[must_use]
pub fn window_mask(slots: usize, lo: usize, hi: usize) -> Vec<f64> {
    (0..slots)
        .map(|i| if i >= lo && i < hi { 1.0 } else { 0.0 })
        .collect()
}

/// Cyclic slot rotation, positive = left — the slot-vector semantics of
/// `Opcode::Rotate { offset }`.
#[must_use]
pub fn rotate_slots(v: &[f64], offset: i64) -> Vec<f64> {
    if v.is_empty() {
        return Vec::new();
    }
    let n = v.len();
    let shift = offset.rem_euclid(n as i64) as usize;
    (0..n).map(|i| v[(i + shift) % n]).collect()
}

/// Cyclic replication of `data` across `slots` slots — how the executor
/// (and the encoder) expands an input vector into a full ciphertext.
#[must_use]
pub fn expand_slots(data: &[f64], slots: usize) -> Vec<f64> {
    if data.is_empty() {
        return vec![0.0; slots];
    }
    (0..slots).map(|i| data[i % data.len()]).collect()
}

/// Packs each job's data into its own `width`-sized slot window:
/// `out[j·width + t] = jobs[j][t mod jobs[j].len()]`, zeros in unused
/// windows. Built exactly like the IR pass packs carried variables —
/// Σⱼ maskⱼ ⊙ rotate(expand(jobⱼ), −j·width) — so a slotwise program run
/// over the packed vector computes, window by window, what it computes
/// on each job's solo expansion (bit-for-bit when every job length
/// divides `width`; the additions only ever combine a value with ±0.0).
///
/// # Panics
///
/// Panics if the windows don't fit (`jobs.len()·width > slots`) or
/// `width` is zero.
#[must_use]
pub fn pack_windows(jobs: &[&[f64]], width: usize, slots: usize) -> Vec<f64> {
    assert!(width > 0, "zero-width window");
    assert!(
        jobs.len() * width <= slots,
        "{} windows of {width} slots exceed {slots} slots",
        jobs.len()
    );
    let mut acc = vec![0.0; slots];
    for (j, job) in jobs.iter().enumerate() {
        let shifted = rotate_slots(&expand_slots(job, slots), -((j * width) as i64));
        let mask = window_mask(slots, j * width, (j + 1) * width);
        for ((a, s), m) in acc.iter_mut().zip(&shifted).zip(&mask) {
            *a += s * m;
        }
    }
    acc
}

/// Extracts window `j` from a packed slot vector and re-replicates it
/// cyclically across all slots — mask, rotate to the origin, then the
/// same rotate-and-add doubling ladder the IR pass emits. The result is
/// what the solo run of window `j`'s job would have produced as a full
/// slot vector (given its data length divides `width`).
///
/// # Panics
///
/// Panics if window `j` is out of range or `packed.len()/width` is not a
/// power of two (the doubling ladder tiles only power-of-two ratios —
/// the same restriction `packable_indices` enforces for the IR pass).
#[must_use]
pub fn unpack_window(packed: &[f64], j: usize, width: usize) -> Vec<f64> {
    let slots = packed.len();
    assert!(width > 0 && (j + 1) * width <= slots, "window out of range");
    assert_eq!(slots % width, 0, "width must divide the slot count");
    assert!(
        (slots / width).is_power_of_two(),
        "slots/width must be a power of two for the replication ladder"
    );
    let mask = window_mask(slots, j * width, (j + 1) * width);
    let masked: Vec<f64> = packed.iter().zip(&mask).map(|(p, m)| p * m).collect();
    let mut v = rotate_slots(&masked, (j * width) as i64);
    let mut step = width;
    while step < slots {
        let rot = rotate_slots(&v, step as i64);
        for (a, r) in v.iter_mut().zip(&rot) {
            *a += r;
        }
        step *= 2;
    }
    v
}

/// Indices of the loop-carried variables of `op_id` that packing would
/// combine, or `None` if packing is not applicable/feasible for this loop:
/// fewer than two cipher carried variables, a non-power-of-two element
/// count, or windows exceeding the slot count.
#[must_use]
pub fn packable_indices(f: &Function, op_id: OpId) -> Option<Vec<usize>> {
    let Opcode::For {
        body, num_elems, ..
    } = &f.op(op_id).opcode
    else {
        return None;
    };
    let args = &f.block(*body).args;
    let cipher: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, &a)| f.ty(a).status == Status::Cipher)
        .map(|(i, _)| i)
        .collect();
    let m = cipher.len();
    if m < 2 {
        return None;
    }
    let s = *num_elems;
    if s == 0 || !s.is_power_of_two() || !f.slots.is_power_of_two() {
        return None;
    }
    if m * s > f.slots {
        return None;
    }
    Some(cipher)
}

/// Packs every eligible loop in the function (recursively). Returns the
/// number of loops packed.
pub fn pack_loops(f: &mut Function) -> usize {
    let mut count = 0;
    pack_in_block(f, f.entry, &mut count);
    count
}

fn pack_in_block(f: &mut Function, block: BlockId, count: &mut usize) {
    let mut i = 0;
    while i < f.block(block).ops.len() {
        let op_id = f.block(block).ops[i];
        if let Opcode::For { body, .. } = f.op(op_id).opcode {
            // Inner loops first (their carried sets are independent).
            pack_in_block(f, body, count);
            if let Some(cipher_idx) = packable_indices(f, op_id) {
                pack_one(f, block, op_id, &cipher_idx);
                *count += 1;
            }
        }
        i += 1;
    }
}

/// Emits the mask constant for window `j` and multiplies `v` by it.
fn mask_mul(
    f: &mut Function,
    block: BlockId,
    at: &mut usize,
    v: ValueId,
    j: usize,
    s: usize,
) -> ValueId {
    let mask = f.insert_op1(
        block,
        *at,
        Opcode::Const(ConstValue::Mask {
            lo: j * s,
            hi: (j + 1) * s,
        }),
        vec![],
        CtType::plain_unset(),
    );
    *at += 1;
    let masked = f.insert_op1(
        block,
        *at,
        Opcode::MultCP,
        vec![v, mask],
        CtType::cipher_unset(),
    );
    *at += 1;
    masked
}

/// Sums a list of ciphertexts with sequential `addcc` ops.
fn add_tree(f: &mut Function, block: BlockId, at: &mut usize, mut vals: Vec<ValueId>) -> ValueId {
    let mut acc = vals.remove(0);
    for v in vals {
        acc = f.insert_op1(
            block,
            *at,
            Opcode::AddCC,
            vec![acc, v],
            CtType::cipher_unset(),
        );
        *at += 1;
    }
    acc
}

/// Re-replicates window `j`'s content across all slots: a rotate-and-add
/// doubling ladder over offsets `s, 2s, 4s, …`.
fn replicate(
    f: &mut Function,
    block: BlockId,
    at: &mut usize,
    mut v: ValueId,
    s: usize,
    slots: usize,
) -> ValueId {
    let mut step = s;
    while step < slots {
        let rot = f.insert_op1(
            block,
            *at,
            Opcode::Rotate {
                offset: step as i64,
            },
            vec![v],
            CtType::cipher_unset(),
        );
        *at += 1;
        v = f.insert_op1(
            block,
            *at,
            Opcode::AddCC,
            vec![v, rot],
            CtType::cipher_unset(),
        );
        *at += 1;
        step *= 2;
    }
    v
}

/// Packs one loop's cipher carried variables (`cipher_idx`, ≥ 2 entries).
fn pack_one(f: &mut Function, block: BlockId, op_id: OpId, cipher_idx: &[usize]) {
    let (old_body, trip, num_elems) = match &f.op(op_id).opcode {
        Opcode::For {
            body,
            trip,
            num_elems,
        } => (*body, trip.clone(), *num_elems),
        _ => unreachable!("pack_one on non-loop"),
    };
    let slots = f.slots;
    let s = num_elems;
    let old_args = f.block(old_body).args.clone();
    let old_inits = f.op(op_id).operands.clone();
    let old_results = f.op(op_id).results.clone();
    let plain_idx: Vec<usize> = (0..old_args.len())
        .filter(|k| !cipher_idx.contains(k))
        .collect();

    // --- Pack the inits in the parent block, before the loop. ---
    let mut at = f.position_in_block(block, op_id).expect("loop in block");
    let masked: Vec<ValueId> = cipher_idx
        .iter()
        .enumerate()
        .map(|(j, &k)| mask_mul(f, block, &mut at, old_inits[k], j, s))
        .collect();
    let packed_init = add_tree(f, block, &mut at, masked);

    // --- Build the new body: unpack head, cloned ops, pack tail. ---
    let new_body = f.add_block();
    let t_arg = f.add_block_arg(new_body, CtType::cipher_unset(), Some("packed".into()));
    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    let mut new_plain_args = Vec::new();
    for &k in &plain_idx {
        let name = f.value(old_args[k]).name.clone();
        let ty = f.ty(old_args[k]);
        let a = f.add_block_arg(new_body, ty, name);
        map.insert(old_args[k], a);
        new_plain_args.push(a);
    }
    let mut bat = 0usize;
    for (j, &k) in cipher_idx.iter().enumerate() {
        let masked = mask_mul(f, new_body, &mut bat, t_arg, j, s);
        let u = replicate(f, new_body, &mut bat, masked, s, slots);
        map.insert(old_args[k], u);
    }
    let yields = clone_body_ops(f, old_body, new_body, bat, &mut map);
    let mut tat = f.block(new_body).ops.len();
    let masked_y: Vec<ValueId> = cipher_idx
        .iter()
        .enumerate()
        .map(|(j, &k)| mask_mul(f, new_body, &mut tat, yields[k], j, s))
        .collect();
    let packed_yield = add_tree(f, new_body, &mut tat, masked_y);
    let mut new_yields = vec![packed_yield];
    for &k in &plain_idx {
        new_yields.push(yields[k]);
    }
    f.push_op(new_body, Opcode::Yield, new_yields, &[]);

    // --- Replace the For op. ---
    let mut new_inits = vec![packed_init];
    for &k in &plain_idx {
        new_inits.push(old_inits[k]);
    }
    let mut result_tys = vec![CtType::cipher_unset()];
    for &k in &plain_idx {
        result_tys.push(f.ty(old_results[k]));
    }
    let pos = f.position_in_block(block, op_id).expect("loop in block");
    let new_for = f.insert_op(
        block,
        pos,
        Opcode::For {
            trip,
            body: new_body,
            num_elems,
        },
        new_inits,
        &result_tys,
    );
    // Drop the old loop from the block (its body becomes unreachable).
    let old_pos = f
        .position_in_block(block, op_id)
        .expect("old loop still here");
    f.block_mut(block).ops.remove(old_pos);
    let new_results = f.op(new_for).results.clone();

    // --- Unpack the loop results after the loop. ---
    let mut uat = f.position_in_block(block, new_for).expect("new loop") + 1;
    for (j, &k) in cipher_idx.iter().enumerate() {
        let masked = mask_mul(f, block, &mut uat, new_results[0], j, s);
        let u = replicate(f, block, &mut uat, masked, s, slots);
        f.replace_uses(old_results[k], u, None);
    }
    for (p, &k) in plain_idx.iter().enumerate() {
        f.replace_uses(old_results[k], new_results[p + 1], None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::op::TripCount;
    use halo_ir::verify::verify_traced;
    use halo_ir::FunctionBuilder;

    fn two_var_loop(slots: usize, num_elems: usize) -> Function {
        let mut b = FunctionBuilder::new("t", slots);
        let x = b.input_cipher("x");
        let y0 = b.input_cipher("y0");
        let a0 = b.input_cipher("a0");
        let r = b.for_loop(TripCount::dynamic("n"), &[y0, a0], num_elems, |b, args| {
            let x2 = b.mul(x, args[0]);
            let y2 = b.mul(x2, x2);
            let a2 = b.add(args[1], y2);
            vec![y2, a2]
        });
        b.ret(&r);
        b.finish()
    }

    #[test]
    fn packs_two_cipher_carried_vars_into_one() {
        let mut f = two_var_loop(16, 4);
        assert_eq!(pack_loops(&mut f), 1);
        verify_traced(&f).unwrap();
        let loop_op = f.loops_in_block(f.entry)[0];
        let body = f.for_body(loop_op);
        assert_eq!(
            f.block(body).args.len(),
            1,
            "single packed carried variable"
        );
        assert_eq!(f.op(loop_op).operands.len(), 1);
        // Unpack ladder: 2 windows × log2(16/4) = 2 rotates each in the
        // body head, plus the same after the loop.
        let body_rotates = f
            .block(body)
            .ops
            .iter()
            .filter(|&&o| matches!(f.op(o).opcode, Opcode::Rotate { .. }))
            .count();
        assert_eq!(body_rotates, 4);
        // Masks are multcp against Mask constants.
        let masks = f.count_ops(|o| matches!(o, Opcode::Const(ConstValue::Mask { .. })));
        assert!(
            masks >= 6,
            "pack-in, unpack-in-body, pack-out, unpack-out masks: {masks}"
        );
    }

    #[test]
    fn single_carried_var_is_not_packed() {
        let mut b = FunctionBuilder::new("t", 16);
        let w = b.input_cipher("w");
        let r = b.for_loop(TripCount::dynamic("n"), &[w], 4, |b, a| {
            vec![b.mul(a[0], a[0])]
        });
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(pack_loops(&mut f), 0);
    }

    #[test]
    fn oversized_windows_are_not_packed() {
        // 2 vars × 16 elems > 16 slots.
        let mut f = two_var_loop(16, 16);
        assert_eq!(pack_loops(&mut f), 0);
    }

    #[test]
    fn non_power_of_two_elems_not_packed() {
        let mut f = two_var_loop(16, 3);
        assert_eq!(pack_loops(&mut f), 0);
    }

    #[test]
    fn plain_carried_vars_ride_alongside_the_packed_ct() {
        let mut b = FunctionBuilder::new("t", 16);
        let y0 = b.input_cipher("y0");
        let a0 = b.input_cipher("a0");
        let c0 = b.const_splat(1.0);
        let r = b.for_loop(TripCount::dynamic("n"), &[y0, a0, c0], 4, |b, args| {
            let two = b.const_splat(2.0);
            let c2 = b.mul(args[2], two);
            let y2 = b.mul(args[0], args[0]);
            let a2 = b.add(args[1], y2);
            vec![y2, a2, c2]
        });
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(pack_loops(&mut f), 1);
        verify_traced(&f).unwrap();
        let loop_op = f.loops_in_block(f.entry)[0];
        let body = f.for_body(loop_op);
        // packed + plain = 2 carried variables.
        assert_eq!(f.block(body).args.len(), 2);
        assert_eq!(f.ty(f.block(body).args[1]).status, Status::Plain);
    }

    #[test]
    fn slot_pack_roundtrips_with_partial_occupancy() {
        // 3 jobs (non-power-of-two occupancy) in 4-slot windows of a
        // 32-slot vector: two full-width jobs and one half-width job
        // whose data replicates cyclically inside its window.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [-1.0, -2.0];
        let c = [9.0, 8.0, 7.0, 6.0];
        let packed = pack_windows(&[&a, &b, &c], 4, 32);
        assert_eq!(&packed[0..4], &a);
        assert_eq!(&packed[4..8], &[-1.0, -2.0, -1.0, -2.0]);
        assert_eq!(&packed[8..12], &c);
        assert!(packed[12..].iter().all(|&x| x == 0.0), "unused windows");
        for (j, data) in [&a[..], &b[..], &c[..]].iter().enumerate() {
            let got = unpack_window(&packed, j, 4);
            assert_eq!(got, expand_slots(data, 32), "window {j}");
        }
        // Empty windows unpack to all-zero, not to a neighbor's data.
        assert!(unpack_window(&packed, 5, 4).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn slot_rotate_matches_ir_semantics() {
        let v = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(rotate_slots(&v, 1), vec![1.0, 2.0, 3.0, 0.0]);
        assert_eq!(rotate_slots(&v, -1), vec![3.0, 0.0, 1.0, 2.0]);
        assert_eq!(rotate_slots(&v, 4), v.to_vec());
        assert_eq!(rotate_slots(&v, -7), rotate_slots(&v, 1));
    }

    #[test]
    fn packed_function_levels_with_single_head_bootstrap() {
        use crate::config::CompileOptions;
        use crate::scale::assign_levels;
        use halo_ckks::CkksParams;
        let mut f = two_var_loop(32, 4);
        pack_loops(&mut f);
        let mut opts = CompileOptions::new(CkksParams::test_small());
        opts.params.poly_degree = 64; // 32 slots
        assign_levels(&mut f, &opts).unwrap();
        // One head bootstrap for the packed carried variable, plus one
        // reset in the entry block for the post-loop unpack (the loop
        // result emerges at the floor and unpacking multiplies it).
        let loop_op = f.loops_in_block(f.entry)[0];
        let body = f.for_body(loop_op);
        let body_boots = f
            .block(body)
            .ops
            .iter()
            .filter(|&&o| matches!(f.op(o).opcode, Opcode::Bootstrap { .. }))
            .count();
        assert_eq!(body_boots, 1, "single head bootstrap in the packed body");
        assert_eq!(f.count_ops(|o| matches!(o, Opcode::Bootstrap { .. })), 2);
    }
}
