//! Full loop unrolling — how the DaCapo baseline "supports" loops
//! (paper §2.4).
//!
//! Every constant-trip loop is expanded into straight-line code; dynamic
//! trip counts are rejected with
//! [`CompileError::DynamicTripNotSupported`], reproducing the baseline's
//! documented limitation. After unrolling, the standard straight-line
//! machinery (status normalization, scale management, DP bootstrap
//! placement) compiles the program — so compile time and code size grow
//! with the iteration count, which is exactly what Tables 6 and 7 measure.

use std::collections::HashMap;

use halo_ir::analysis::propagate_statuses;
use halo_ir::func::{BlockId, Function, OpId};
use halo_ir::op::{Opcode, TripCount};
use halo_ir::subst::clone_body_ops;

use crate::error::CompileError;
use crate::peel::normalize_arith_opcodes;

/// Fully unrolls every loop in the function (innermost included, since
/// cloned inner loops are re-scanned). Returns the number of loop ops
/// expanded.
///
/// # Errors
///
/// Returns [`CompileError::DynamicTripNotSupported`] on the first loop
/// whose trip count is not a compile-time constant.
pub fn full_unroll(f: &mut Function) -> Result<usize, CompileError> {
    let mut expanded = 0;
    while let Some((block, op_id)) = first_loop(f, f.entry) {
        let trip = match &f.op(op_id).opcode {
            Opcode::For { trip, .. } => trip.clone(),
            _ => unreachable!(),
        };
        let TripCount::Constant(n) = trip else {
            return Err(CompileError::DynamicTripNotSupported { op: op_id });
        };
        expand(f, block, op_id, n);
        expanded += 1;
    }
    propagate_statuses(f);
    normalize_arith_opcodes(f);
    Ok(expanded)
}

fn first_loop(f: &Function, block: BlockId) -> Option<(BlockId, OpId)> {
    for &op_id in &f.block(block).ops {
        if let Opcode::For { body, .. } = f.op(op_id).opcode {
            // Expand outer loops first; cloned inner loops are found on
            // the next scan.
            let _ = body;
            return Some((block, op_id));
        }
    }
    None
}

fn expand(f: &mut Function, block: BlockId, op_id: OpId, n: u64) {
    let body = f.for_body(op_id);
    let args = f.block(body).args.clone();
    let inits = f.op(op_id).operands.clone();
    let results = f.op(op_id).results.clone();

    let mut carried = inits;
    for _ in 0..n {
        let mut map: HashMap<_, _> = args.iter().copied().zip(carried.iter().copied()).collect();
        let at = f.position_in_block(block, op_id).expect("loop in block");
        carried = clone_body_ops(f, body, block, at, &mut map);
    }
    for (&r, &c) in results.iter().zip(&carried) {
        f.replace_uses(r, c, None);
    }
    let pos = f.position_in_block(block, op_id).expect("loop in block");
    f.block_mut(block).ops.remove(pos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::verify::verify_traced;
    use halo_ir::FunctionBuilder;

    #[test]
    fn unrolls_flat_loop_to_straight_line() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let w = b.input_cipher("w");
        let r = b.for_loop(TripCount::Constant(4), &[w], 4, |b, a| vec![b.mul(a[0], x)]);
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(full_unroll(&mut f).unwrap(), 1);
        verify_traced(&f).unwrap();
        assert!(f.loops_in_block(f.entry).is_empty());
        assert_eq!(f.count_ops(Opcode::is_mult), 4);
    }

    #[test]
    fn unrolls_nested_loops_multiplicatively() {
        let mut b = FunctionBuilder::new("t", 8);
        let w = b.input_cipher("w");
        let r = b.for_loop(TripCount::Constant(3), &[w], 4, |b, outer| {
            let inner = b.for_loop(TripCount::Constant(2), &[outer[0]], 4, |b, a| {
                vec![b.mul(a[0], a[0])]
            });
            vec![inner[0]]
        });
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(
            full_unroll(&mut f).unwrap(),
            1 + 3,
            "outer once, 3 cloned inners"
        );
        verify_traced(&f).unwrap();
        assert_eq!(f.count_ops(Opcode::is_mult), 6);
    }

    #[test]
    fn zero_trip_loop_forwards_inits() {
        let mut b = FunctionBuilder::new("t", 8);
        let w = b.input_cipher("w");
        let r = b.for_loop(TripCount::Constant(0), &[w], 4, |b, a| {
            vec![b.mul(a[0], a[0])]
        });
        b.ret(&r);
        let mut f = b.finish();
        full_unroll(&mut f).unwrap();
        assert_eq!(f.outputs(), vec![w]);
    }

    #[test]
    fn dynamic_trip_is_rejected() {
        let mut b = FunctionBuilder::new("t", 8);
        let w = b.input_cipher("w");
        let r = b.for_loop(TripCount::dynamic("n"), &[w], 4, |b, a| {
            vec![b.mul(a[0], a[0])]
        });
        b.ret(&r);
        let mut f = b.finish();
        let err = full_unroll(&mut f).unwrap_err();
        assert!(matches!(err, CompileError::DynamicTripNotSupported { .. }));
    }

    #[test]
    fn unrolled_plain_init_becomes_cipher_chain_with_fixed_opcodes() {
        // iteration 1 uses the plain init (addcp); iterations 2+ use the
        // previous iteration's cipher result (normalized to addcc).
        let mut b = FunctionBuilder::new("t", 8);
        let y = b.input_cipher("y");
        let a0 = b.const_splat(0.0);
        let r = b.for_loop(TripCount::Constant(3), &[a0], 4, |b, args| {
            vec![b.add(args[0], y)]
        });
        b.ret(&r);
        let mut f = b.finish();
        full_unroll(&mut f).unwrap();
        verify_traced(&f).unwrap();
        let kinds: Vec<_> = f
            .block(f.entry)
            .ops
            .iter()
            .map(|&o| f.op(o).opcode.mnemonic())
            .filter(|k| k.starts_with("add"))
            .collect();
        assert_eq!(kinds, vec!["addcp", "addcc", "addcc"]);
    }
}
