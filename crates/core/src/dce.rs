//! Dead-code elimination.
//!
//! The IR is pure (no memory, no I/O), so any op none of whose results is
//! transitively used by a terminator can be dropped. Inputs are kept (they
//! are the function's interface); loops are dropped whole when none of
//! their results is used.

use std::collections::HashSet;

use halo_ir::func::{BlockId, Function, ValueId};
use halo_ir::op::Opcode;

/// Removes dead ops everywhere. Returns the number of ops removed.
pub fn run(f: &mut Function) -> usize {
    let mut used: HashSet<ValueId> = HashSet::new();
    let mut keep: HashSet<halo_ir::OpId> = HashSet::new();
    mark_block(f, f.entry, &mut used, &mut keep);
    let mut removed = 0;
    sweep_block(f, f.entry, &keep, &mut removed);
    removed
}

/// Backward pass: an op is kept if it is a terminator, an input, or any of
/// its results is used; kept ops mark their operands used. Loop bodies are
/// processed when their `For` is kept (the body's terminator seeds it).
fn mark_block(
    f: &Function,
    block: BlockId,
    used: &mut HashSet<ValueId>,
    keep: &mut HashSet<halo_ir::OpId>,
) {
    for &op_id in f.block(block).ops.iter().rev() {
        let op = f.op(op_id);
        let needed = op.opcode.is_terminator()
            || matches!(op.opcode, Opcode::Input { .. })
            || op.results.iter().any(|r| used.contains(r));
        if !needed {
            continue;
        }
        keep.insert(op_id);
        for &operand in &op.operands {
            used.insert(operand);
        }
        if let Opcode::For { body, .. } = op.opcode {
            mark_block(f, body, used, keep);
            // Live-ins referenced by the body were marked inside.
        }
    }
}

fn sweep_block(
    f: &mut Function,
    block: BlockId,
    keep: &HashSet<halo_ir::OpId>,
    removed: &mut usize,
) {
    let ops = f.block(block).ops.clone();
    let kept: Vec<_> = ops.iter().copied().filter(|o| keep.contains(o)).collect();
    *removed += ops.len() - kept.len();
    f.block_mut(block).ops = kept;
    let loops = f.loops_in_block(block);
    for l in loops {
        let body = f.for_body(l);
        sweep_block(f, body, keep, removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::op::TripCount;
    use halo_ir::verify::verify_traced;
    use halo_ir::FunctionBuilder;

    #[test]
    fn removes_unused_arithmetic_keeps_inputs() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let _dead = b.mul(x, y);
        let live = b.add(x, y);
        b.ret(&[live]);
        let mut f = b.finish();
        assert_eq!(run(&mut f), 1);
        verify_traced(&f).unwrap();
        let kinds: Vec<_> = f
            .block(f.entry)
            .ops
            .iter()
            .map(|&o| f.op(o).opcode.mnemonic())
            .collect();
        assert_eq!(kinds, vec!["input", "input", "addcc", "return"]);
    }

    #[test]
    fn removes_unused_loop_entirely() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let _dead_loop = b.for_loop(TripCount::Constant(3), &[x], 4, |b, a| {
            vec![b.mul(a[0], a[0])]
        });
        let live = b.add(x, x);
        b.ret(&[live]);
        let mut f = b.finish();
        assert!(run(&mut f) >= 1);
        assert!(f.loops_in_block(f.entry).is_empty());
    }

    #[test]
    fn keeps_loop_with_used_result_and_cleans_its_body() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let r = b.for_loop(TripCount::Constant(3), &[x], 4, |b, a| {
            let _dead_inside = b.mul(a[0], a[0]);
            vec![b.add(a[0], a[0])]
        });
        b.ret(&r);
        let mut f = b.finish();
        assert_eq!(run(&mut f), 1);
        verify_traced(&f).unwrap();
        let body = f.for_body(f.loops_in_block(f.entry)[0]);
        let kinds: Vec<_> = f
            .block(body)
            .ops
            .iter()
            .map(|&o| f.op(o).opcode.mnemonic())
            .collect();
        assert_eq!(kinds, vec!["addcc", "yield"]);
    }

    #[test]
    fn chains_of_dead_ops_removed_in_one_pass() {
        let mut b = FunctionBuilder::new("t", 8);
        let x = b.input_cipher("x");
        let d1 = b.mul(x, x);
        let d2 = b.mul(d1, d1);
        let _d3 = b.mul(d2, d2);
        b.ret(&[x]);
        let mut f = b.finish();
        assert_eq!(run(&mut f), 3);
    }
}
