//! Optimal-placement autotuning: per-program search over the joint
//! configuration space the paper fixes by heuristic.
//!
//! HALO's five [`CompilerConfig`] variants hard-wire their decisions: the
//! unroll factor comes from the §6.2 formula, packing is always attempted,
//! peeling stops at status matching, and target tuning is all-or-nothing.
//! This module searches the joint space instead —
//!
//! * **unroll** — leave loops alone, the paper's heuristic factor, any
//!   explicit factor `2..=L`, or DaCapo-style full unrolling (constant
//!   trips only);
//! * **packing** — on or off (the pipeline's cost-aware pack driver is
//!   subsumed: both points are in the space);
//! * **peel depth** — extra constant-trip first-iteration peels beyond
//!   the mandatory status peel;
//! * **bootstrap target tuning** — whether §6.3 target lowering runs
//!   (the pass itself derives the per-group optimal targets).
//!
//! Every candidate [`TunePlan`] compiles through the ordinary pipeline
//! (`compile(src, CompilerConfig::Tuned(plan), opts)`) and is scored with
//! the calibrated static estimate [`estimate_cost_us`] — the same modeled
//! time the sim backend charges at execution, which the calibration test
//! suite ties together. Two interchangeable strategies implement one
//! [`Tuner`] trait so tests can assert they agree:
//!
//! * [`ExhaustiveTuner`] compiles every point — the ground truth for
//!   small spaces;
//! * [`BranchBoundTuner`] shares work across the search: plans that agree
//!   on (unroll, pack, peel) share one traced prefix, whose admissible
//!   floor ([`crate::cost_est::traced_floor_us`]) prunes both `tune`
//!   leaves whenever the floor already meets the incumbent. Pruning is
//!   optimality-preserving by construction — the agreement proptest in
//!   `tests/autotune_optimal.rs` is the proof harness.
//!
//! The [`PolicyHook`] seam lets a future learned policy (CHEHAB-style RL,
//! see PAPERS.md) reorder candidates — a better-first ordering tightens
//! the incumbent sooner and prunes more — and observe every evaluation as
//! a training signal, without touching the search's optimality argument.

use std::collections::HashMap;

use halo_ir::func::{BlockId, Function};
use halo_ir::op::{Opcode, TripCount};

use crate::config::{CompileOptions, CompilerConfig};
use crate::cost_est::{estimate_cost_us, traced_floor_us};
use crate::error::CompileError;
use crate::pipeline::{compile, plan_traced, PipelineHooks, ASSUMED_TRIPS};

/// How a tuned plan unrolls loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnrollChoice {
    /// Leave loops as written.
    None,
    /// The paper's level-aware factor formula (§6.2).
    Heuristic,
    /// Force this factor on every eligible loop (clamped per constant
    /// trip; epilogue loops are never re-split).
    Factor(u8),
    /// DaCapo-style full unrolling — only in spaces without dynamic trips.
    Full,
}

/// One point of the joint search space. `Copy` (and tiny) so it embeds
/// directly in the [`CompilerConfig::Tuned`] arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TunePlan {
    /// Unroll treatment.
    pub unroll: UnrollChoice,
    /// Run the loop-carried packing pass (§6.1).
    pub pack: bool,
    /// Extra constant-trip first-iteration peels beyond status matching.
    pub peel_extra: u8,
    /// Run bootstrap target-level tuning (§6.3).
    pub tune_targets: bool,
}

impl TunePlan {
    /// The plain type-matched pipeline: no unrolling, no packing, no
    /// extra peeling, no target tuning. Always compiles when the source
    /// is valid — the search's fallback point.
    #[must_use]
    pub fn baseline() -> TunePlan {
        TunePlan {
            unroll: UnrollChoice::None,
            pack: false,
            peel_extra: 0,
            tune_targets: false,
        }
    }

    /// Compact human-readable form for tables and reports.
    #[must_use]
    pub fn describe(&self) -> String {
        let unroll = match self.unroll {
            UnrollChoice::None => "none".to_string(),
            UnrollChoice::Heuristic => "heur".to_string(),
            UnrollChoice::Factor(k) => format!("x{k}"),
            UnrollChoice::Full => "full".to_string(),
        };
        format!(
            "unroll={unroll} pack={} peel=+{} tune={}",
            if self.pack { "on" } else { "off" },
            self.peel_extra,
            if self.tune_targets { "on" } else { "off" },
        )
    }
}

impl Default for TunePlan {
    fn default() -> TunePlan {
        TunePlan::baseline()
    }
}

/// The concrete candidate grid for one program, derived from its loop
/// structure so structurally equivalent plans are enumerated once.
///
/// Collapsing invariants (each removes provably duplicate plans):
/// * no undivided loop with ≥ 2 achievable iterations → no factor plans,
///   and the heuristic choice collapses into `None`;
/// * any dynamic trip anywhere → no `Full` plans (DaCapo rejects them);
/// * no constant-trip loop → no extra-peel plans;
/// * no loop at all → the pack dimension collapses (nothing to pack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// Explicit unroll factors to try (each ≥ 2).
    pub factors: Vec<u8>,
    /// Whether DaCapo-style full unrolling is in the space.
    pub allow_full: bool,
    /// Largest `peel_extra` to try.
    pub max_peel_extra: u8,
    /// Whether the pack on/off dimension is explored.
    pub try_pack: bool,
}

/// Default cap on the extra-peel dimension: peeling more than two extra
/// iterations duplicates the body past any observed saving.
const PEEL_EXTRA_CAP: u64 = 2;

impl SearchSpace {
    /// Derives the space from `src`'s loop structure and the level budget.
    #[must_use]
    pub fn for_program(src: &Function, opts: &CompileOptions) -> SearchSpace {
        let mut scan = LoopScan::default();
        scan.visit(src, src.entry);
        let max_level = u64::from(opts.params.max_level);
        let cap = scan.factor_cap.min(max_level);
        SearchSpace {
            factors: (2..=cap).map(|k| k as u8).collect(),
            allow_full: scan.any_loop && !scan.any_dynamic,
            max_peel_extra: scan.max_const_trip.min(PEEL_EXTRA_CAP) as u8,
            try_pack: scan.any_loop,
        }
    }

    /// Shrinks the space for cheap tests: factors capped at `max_factor`,
    /// extra peels at `max_peel`.
    #[must_use]
    pub fn capped(mut self, max_factor: u8, max_peel: u8) -> SearchSpace {
        self.factors.retain(|&k| k <= max_factor);
        self.max_peel_extra = self.max_peel_extra.min(max_peel);
        self
    }

    /// Enumerates every candidate plan, in a deterministic order. `Full`
    /// plans are canonical (no pack, no extra peel — full unrolling
    /// leaves no loops for either), as are no-loop spaces.
    #[must_use]
    pub fn plans(&self) -> Vec<TunePlan> {
        let mut choices = vec![UnrollChoice::None];
        if !self.factors.is_empty() {
            choices.push(UnrollChoice::Heuristic);
            choices.extend(self.factors.iter().map(|&k| UnrollChoice::Factor(k)));
        }
        if self.allow_full {
            choices.push(UnrollChoice::Full);
        }
        let mut plans = Vec::new();
        for &unroll in &choices {
            let full = unroll == UnrollChoice::Full;
            let packs: &[bool] = if full || !self.try_pack {
                &[false]
            } else {
                &[false, true]
            };
            let max_peel = if full { 0 } else { self.max_peel_extra };
            for &pack in packs {
                for peel_extra in 0..=max_peel {
                    for tune_targets in [false, true] {
                        plans.push(TunePlan {
                            unroll,
                            pack,
                            peel_extra,
                            tune_targets,
                        });
                    }
                }
            }
        }
        plans
    }

    /// Number of candidate plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans().len()
    }

    /// Whether the space is empty (it never is: the baseline remains).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans().is_empty()
    }
}

#[derive(Default)]
struct LoopScan {
    any_loop: bool,
    any_dynamic: bool,
    max_const_trip: u64,
    /// Largest useful explicit factor over all undivided loops: a dynamic
    /// trip admits any factor (capped by the level budget); a constant
    /// trip clamps at the trip count.
    factor_cap: u64,
}

impl LoopScan {
    fn visit(&mut self, f: &Function, block: BlockId) {
        for op_id in f.loops_in_block(block) {
            self.any_loop = true;
            if let Opcode::For { trip, .. } = &f.op(op_id).opcode {
                match trip {
                    TripCount::Constant(n) => {
                        self.max_const_trip = self.max_const_trip.max(*n);
                        self.factor_cap = self.factor_cap.max(*n);
                    }
                    TripCount::Dynamic { div, .. } => {
                        self.any_dynamic = true;
                        if *div == 1 {
                            self.factor_cap = u64::MAX;
                        }
                    }
                    TripCount::DynamicRem { .. } => {
                        self.any_dynamic = true;
                    }
                }
            }
            self.visit(f, f.for_body(op_id));
        }
    }
}

/// The best plan a search found, with the search's own accounting.
#[derive(Debug, Clone, Copy)]
pub struct TuneOutcome {
    /// The winning plan.
    pub plan: TunePlan,
    /// Its modeled cost (µs) under the assumed trip count.
    pub cost_us: f64,
    /// Candidates actually compiled and scored.
    pub evaluated: usize,
    /// Candidates discarded without a full compile (bound or failed
    /// prefix).
    pub pruned: usize,
    /// Total size of the candidate space.
    pub space: usize,
}

/// Seam for a learned search policy (CHEHAB-style RL, PAPERS.md): order
/// the candidates (better-first orderings tighten the branch-and-bound
/// incumbent sooner) and observe every evaluation as a training signal.
/// A policy can only *reorder* the space, never shrink it, so it cannot
/// break the optimality argument.
pub trait PolicyHook {
    /// Reorders `plans` in place before the search visits them.
    fn order(&mut self, src: &Function, plans: &mut Vec<TunePlan>);
    /// Observes one scored candidate.
    fn observe(&mut self, plan: TunePlan, cost_us: f64);
}

/// Default policy: visit HALO-shaped plans first (heuristic unroll, then
/// full unrolling, each with tuning before not), since the paper's
/// heuristics are usually close to optimal and make tight incumbents.
/// Learns nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultPolicy;

impl PolicyHook for DefaultPolicy {
    fn order(&mut self, _src: &Function, plans: &mut Vec<TunePlan>) {
        plans.sort_by_key(|p| {
            let family = match p.unroll {
                UnrollChoice::Heuristic => 0,
                UnrollChoice::Full => 1,
                UnrollChoice::None => 2,
                UnrollChoice::Factor(_) => 3,
            };
            (family, !p.tune_targets, !p.pack)
        });
    }

    fn observe(&mut self, _plan: TunePlan, _cost_us: f64) {}
}

/// A search strategy over one program's [`SearchSpace`].
pub trait Tuner {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Searches `space` and returns the cheapest plan by modeled cost.
    ///
    /// # Errors
    ///
    /// Returns the first [`CompileError`] when *no* candidate compiles
    /// (an individual failing candidate is skipped, not fatal).
    fn tune(
        &self,
        src: &Function,
        opts: &CompileOptions,
        space: &SearchSpace,
        assumed_trip: u64,
        policy: &mut dyn PolicyHook,
    ) -> Result<TuneOutcome, CompileError>;
}

/// Compiles one candidate and scores it with the static estimate.
fn evaluate(
    src: &Function,
    opts: &CompileOptions,
    plan: TunePlan,
    assumed_trip: u64,
) -> Result<f64, CompileError> {
    let r = compile(src, CompilerConfig::Tuned(plan), opts)?;
    Ok(estimate_cost_us(&r.function, assumed_trip))
}

fn finish(
    best: Option<(TunePlan, f64)>,
    evaluated: usize,
    pruned: usize,
    space: usize,
    first_err: Option<CompileError>,
) -> Result<TuneOutcome, CompileError> {
    match best {
        Some((plan, cost_us)) => Ok(TuneOutcome {
            plan,
            cost_us,
            evaluated,
            pruned,
            space,
        }),
        None => Err(first_err
            .unwrap_or_else(|| CompileError::Internal("empty autotune search space".into()))),
    }
}

/// Ground-truth strategy: compiles and scores every candidate. Cost is
/// linear in the space; use on small spaces and as the oracle the
/// branch-and-bound strategy is tested against.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExhaustiveTuner;

impl Tuner for ExhaustiveTuner {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn tune(
        &self,
        src: &Function,
        opts: &CompileOptions,
        space: &SearchSpace,
        assumed_trip: u64,
        policy: &mut dyn PolicyHook,
    ) -> Result<TuneOutcome, CompileError> {
        let mut plans = space.plans();
        policy.order(src, &mut plans);
        let total = plans.len();
        let mut best: Option<(TunePlan, f64)> = None;
        let mut evaluated = 0;
        let mut first_err = None;
        for plan in plans {
            match evaluate(src, opts, plan, assumed_trip) {
                Ok(cost) => {
                    policy.observe(plan, cost);
                    evaluated += 1;
                    if best.is_none_or(|(_, b)| cost < b) {
                        best = Some((plan, cost));
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        finish(best, evaluated, total - evaluated, total, first_err)
    }
}

/// Branch-and-bound strategy with shared-prefix bounds.
///
/// Plans that agree on `(unroll, pack, peel_extra)` share their entire
/// traced pipeline — only level assignment and target tuning differ. For
/// each such prefix the strategy runs the (cheap) traced passes once and
/// computes [`traced_floor_us`], an *admissible* lower bound on every
/// typed completion: level assignment only raises levels and inserts
/// management ops. Whenever the floor already meets the incumbent's cost,
/// both `tune` leaves are pruned without running level assignment — the
/// expensive half of a compile — and optimality is preserved because the
/// bound never exceeds a leaf's true cost. Candidates the exhaustive
/// strategy would find infeasible prune here through the same seam (a
/// failed prefix bounds at +∞).
#[derive(Debug, Default, Clone, Copy)]
pub struct BranchBoundTuner;

impl Tuner for BranchBoundTuner {
    fn name(&self) -> &'static str {
        "branch-bound"
    }

    fn tune(
        &self,
        src: &Function,
        opts: &CompileOptions,
        space: &SearchSpace,
        assumed_trip: u64,
        policy: &mut dyn PolicyHook,
    ) -> Result<TuneOutcome, CompileError> {
        let mut plans = space.plans();
        policy.order(src, &mut plans);
        let total = plans.len();
        let mut bounds: HashMap<(UnrollChoice, bool, u8), f64> = HashMap::new();
        let mut best: Option<(TunePlan, f64)> = None;
        let mut evaluated = 0;
        let mut pruned = 0;
        let mut first_err: Option<CompileError> = None;
        for plan in plans {
            let key = (plan.unroll, plan.pack, plan.peel_extra);
            let bound = match bounds.get(&key) {
                Some(&b) => b,
                None => {
                    let b = match prefix_floor(src, plan, opts, assumed_trip) {
                        Ok(floor) => floor,
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                            f64::INFINITY
                        }
                    };
                    bounds.insert(key, b);
                    b
                }
            };
            let beaten = best.is_some_and(|(_, inc)| bound >= inc);
            if bound.is_infinite() || beaten {
                pruned += 1;
                continue;
            }
            match evaluate(src, opts, plan, assumed_trip) {
                Ok(cost) => {
                    policy.observe(plan, cost);
                    evaluated += 1;
                    if best.is_none_or(|(_, b)| cost < b) {
                        best = Some((plan, cost));
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        finish(best, evaluated, pruned, total, first_err)
    }
}

/// Runs one plan's traced prefix and returns its admissible cost floor.
/// Pass panics (malformed sources) are converted to errors, matching
/// `compile`'s boundary.
fn prefix_floor(
    src: &Function,
    plan: TunePlan,
    opts: &CompileOptions,
    assumed_trip: u64,
) -> Result<f64, CompileError> {
    let traced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        plan_traced(src, plan, opts, &mut PipelineHooks::default())
    }))
    .unwrap_or_else(|_| {
        Err(CompileError::Internal(
            "traced prefix panicked during autotuning".into(),
        ))
    })?;
    Ok(traced_floor_us(&traced.0, assumed_trip))
}

/// Autotunes `src` with the default strategy ([`BranchBoundTuner`]), the
/// derived [`SearchSpace`], the paper's 40-iteration trip assumption, and
/// the default policy.
///
/// # Errors
///
/// Propagates the first [`CompileError`] when no candidate compiles.
pub fn autotune(src: &Function, opts: &CompileOptions) -> Result<TuneOutcome, CompileError> {
    BranchBoundTuner.tune(
        src,
        opts,
        &SearchSpace::for_program(src, opts),
        ASSUMED_TRIPS,
        &mut DefaultPolicy,
    )
}

/// Modeled cost (µs) of compiling `src` under one of the paper's
/// heuristic configurations — the baseline the tuned plan is compared
/// against in benches and tests.
///
/// # Errors
///
/// Propagates the configuration's [`CompileError`] (e.g. DaCapo on
/// dynamic trips).
pub fn heuristic_cost_us(
    src: &Function,
    config: CompilerConfig,
    opts: &CompileOptions,
    assumed_trip: u64,
) -> Result<f64, CompileError> {
    let r = compile(src, config, opts)?;
    Ok(estimate_cost_us(&r.function, assumed_trip))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ckks::CkksParams;
    use halo_ir::FunctionBuilder;

    fn opts() -> CompileOptions {
        let mut o = CompileOptions::new(CkksParams::test_small());
        o.params.poly_degree = 64; // 32 slots
        o
    }

    /// Figure-2-style program: 2 carried vars, one plain init, depth 2.
    fn sample(trip: TripCount) -> Function {
        let mut b = FunctionBuilder::new("fig2", 32);
        let x = b.input_cipher("x");
        let y0 = b.input_cipher("y");
        let a0 = b.const_splat(1.0);
        let r = b.for_loop(trip, &[y0, a0], 4, |b, args| {
            let x2 = b.mul(x, args[0]);
            let y2 = b.mul(x2, x2);
            let a2 = b.add(args[1], y2);
            vec![y2, a2]
        });
        b.ret(&r);
        b.finish()
    }

    #[test]
    fn space_derivation_collapses_structural_duplicates() {
        let o = opts();
        // Dynamic trip: full unrolling is out, factors run to L.
        let dynamic = SearchSpace::for_program(&sample(TripCount::dynamic("n")), &o);
        assert!(!dynamic.allow_full);
        assert!(dynamic.try_pack);
        assert_eq!(dynamic.max_peel_extra, 0, "no constant-trip loop");
        assert_eq!(
            dynamic.factors.len(),
            o.params.max_level as usize - 1,
            "2..=L"
        );

        // Constant trip 12: full unrolling allowed, factor cap = 12.
        let constant = SearchSpace::for_program(&sample(TripCount::Constant(12)), &o);
        assert!(constant.allow_full);
        assert_eq!(constant.max_peel_extra, 2);
        assert_eq!(*constant.factors.last().unwrap(), 12);

        // No loops at all: only the pack-collapsed baseline dimensions.
        let mut b = FunctionBuilder::new("straight", 32);
        let x = b.input_cipher("x");
        let y = b.mul(x, x);
        b.ret(&[y]);
        let straight = b.finish();
        let space = SearchSpace::for_program(&straight, &o);
        assert!(space.factors.is_empty() && !space.allow_full && !space.try_pack);
        // unroll=None × pack=off × peel=0 × tune∈{off,on}.
        assert_eq!(space.len(), 2);
    }

    #[test]
    fn capped_space_shrinks_factor_and_peel_dimensions() {
        let o = opts();
        let space = SearchSpace::for_program(&sample(TripCount::Constant(12)), &o);
        let capped = space.clone().capped(3, 1);
        assert!(capped.factors.iter().all(|&k| k <= 3));
        assert_eq!(capped.max_peel_extra, 1);
        assert!(capped.len() < space.len());
    }

    #[test]
    fn tuned_plan_beats_or_matches_every_heuristic() {
        let o = opts();
        for trip in [TripCount::dynamic("n"), TripCount::Constant(12)] {
            let src = sample(trip);
            let outcome = autotune(&src, &o).unwrap();
            for config in CompilerConfig::ALL {
                let Ok(h) = heuristic_cost_us(&src, config, &o, ASSUMED_TRIPS) else {
                    continue; // DaCapo on the dynamic trip
                };
                assert!(
                    outcome.cost_us <= h + 1e-6,
                    "{} beats the tuned plan: {h} < {} ({})",
                    config.name(),
                    outcome.cost_us,
                    outcome.plan.describe()
                );
            }
        }
    }

    #[test]
    fn strategies_agree_and_branch_bound_prunes() {
        let o = opts();
        for trip in [TripCount::dynamic("n"), TripCount::Constant(6)] {
            let src = sample(trip);
            let space = SearchSpace::for_program(&src, &o).capped(6, 1);
            let ex = ExhaustiveTuner
                .tune(&src, &o, &space, ASSUMED_TRIPS, &mut DefaultPolicy)
                .unwrap();
            let bb = BranchBoundTuner
                .tune(&src, &o, &space, ASSUMED_TRIPS, &mut DefaultPolicy)
                .unwrap();
            assert!(
                (ex.cost_us - bb.cost_us).abs() <= 1e-9 * ex.cost_us.max(1.0),
                "strategies disagree: exhaustive {} vs branch-bound {}",
                ex.cost_us,
                bb.cost_us
            );
            assert_eq!(ex.space, bb.space);
            assert!(bb.evaluated + bb.pruned == bb.space);
        }
    }

    #[test]
    fn policy_hook_observes_every_evaluation_and_may_reorder() {
        struct Recording {
            seen: Vec<(TunePlan, f64)>,
        }
        impl PolicyHook for Recording {
            fn order(&mut self, _src: &Function, plans: &mut Vec<TunePlan>) {
                plans.reverse(); // any ordering must not change the result
            }
            fn observe(&mut self, plan: TunePlan, cost_us: f64) {
                self.seen.push((plan, cost_us));
            }
        }
        let o = opts();
        let src = sample(TripCount::dynamic("n"));
        let space = SearchSpace::for_program(&src, &o).capped(3, 0);
        let mut rec = Recording { seen: Vec::new() };
        let out = BranchBoundTuner
            .tune(&src, &o, &space, ASSUMED_TRIPS, &mut rec)
            .unwrap();
        assert_eq!(rec.seen.len(), out.evaluated);
        let best_seen = rec
            .seen
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        assert!((best_seen - out.cost_us).abs() < 1e-9);
        let ex = ExhaustiveTuner
            .tune(&src, &o, &space, ASSUMED_TRIPS, &mut DefaultPolicy)
            .unwrap();
        assert!((ex.cost_us - out.cost_us).abs() <= 1e-9 * ex.cost_us.max(1.0));
    }

    #[test]
    fn tuned_config_round_trips_through_compile() {
        let o = opts();
        let src = sample(TripCount::dynamic("n"));
        let outcome = autotune(&src, &o).unwrap();
        let r = compile(&src, CompilerConfig::Tuned(outcome.plan), &o).unwrap();
        assert!(
            (estimate_cost_us(&r.function, ASSUMED_TRIPS) - outcome.cost_us).abs() < 1e-9,
            "recompiling the winning plan reproduces its score"
        );
        assert_eq!(r.config, CompilerConfig::Tuned(outcome.plan));
    }

    #[test]
    fn describe_is_compact_and_total() {
        let plan = TunePlan {
            unroll: UnrollChoice::Factor(4),
            pack: true,
            peel_extra: 1,
            tune_targets: true,
        };
        assert_eq!(plan.describe(), "unroll=x4 pack=on peel=+1 tune=on");
        assert_eq!(
            TunePlan::baseline().describe(),
            "unroll=none pack=off peel=+0 tune=off"
        );
    }
}
