//! Compiler errors.

use std::fmt;

use halo_ir::{OpId, VerifyError};

/// An error raised while compiling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A loop with a dynamic trip count reached a pass that requires full
    /// unrolling — the DaCapo baseline's documented limitation (§2.4).
    DynamicTripNotSupported {
        /// The offending loop.
        op: OpId,
    },
    /// The program needs more multiplicative depth than any bootstrap plan
    /// can supply (a single op chain deeper than the level budget).
    DepthInfeasible {
        /// Where the unsatisfiable segment starts.
        op: Option<OpId>,
        /// Description of the failure.
        detail: String,
    },
    /// Packing was requested but the carried variables do not fit in one
    /// ciphertext.
    PackingInfeasible {
        /// Description of the failure.
        detail: String,
    },
    /// Verification failed after a pass — an internal invariant violation.
    Verify(VerifyError),
    /// A pass broke a verifier invariant, localized by the per-pass
    /// verification hooks ([`crate::pipeline::PipelineHooks`]) to the
    /// first pass after which the program stopped verifying.
    PassVerify {
        /// The name of the offending pass ([`crate::pipeline::Pass::name`]).
        pass: &'static str,
        /// The underlying verification failure.
        err: VerifyError,
    },
    /// Any other internal inconsistency.
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DynamicTripNotSupported { op } => write!(
                f,
                "op #{}: loop has a dynamic trip count, which full unrolling cannot compile",
                op.0
            ),
            CompileError::DepthInfeasible { op, detail } => match op {
                Some(op) => write!(f, "op #{}: depth infeasible: {detail}", op.0),
                None => write!(f, "depth infeasible: {detail}"),
            },
            CompileError::PackingInfeasible { detail } => {
                write!(f, "packing infeasible: {detail}")
            }
            CompileError::Verify(e) => write!(f, "post-pass verification failed: {e}"),
            CompileError::PassVerify { pass, err } => {
                write!(f, "pass '{pass}' broke an invariant: {err}")
            }
            CompileError::Internal(s) => write!(f, "internal compiler error: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<VerifyError> for CompileError {
    fn from(e: VerifyError) -> CompileError {
        CompileError::Verify(e)
    }
}
