//! # halo-ml — machine-learning benchmarks for HALO
//!
//! The seven iterative ML workloads of the paper's evaluation (§7,
//! Table 4), built as traced IR programs over the `halo-ir` frontend, plus
//! the non-linear approximation machinery they need:
//!
//! - [`approx`] — Chebyshev fitting, log-depth (Paterson–Stockmeyer-style)
//!   polynomial evaluation in both monomial and Chebyshev bases, the
//!   composite minimax `sign` (degrees {15, 15, 27}, multiplicative depth
//!   13), the degree-96 `sigmoid`, and the iterative inverse-square-root
//!   used by PCA's inner loop.
//! - [`data`] — seeded synthetic datasets plus the embedded iris dataset.
//! - [`bench`](mod@bench) — the benchmark programs: Linear / Polynomial /
//!   Multivariate / Logistic regression, K-means, SVM, and the
//!   nested-loop PCA.

pub mod approx;
pub mod bench;
pub mod data;
