//! Non-linear function approximations for RNS-CKKS.
//!
//! See the paper §7: "We implemented non-linear functions based on the
//! algorithm suggested in \[41\]. Specifically, we approximate the sign
//! function with a minimax composite polynomial using degrees {15, 15, 27}
//! (multiplicative depth of 13) and the sigmoid function utilizing a
//! 96th-order single polynomial (multiplicative depth of 7). On the other
//! hand, the square root (sqrt) function iteratively approximates the sqrt
//! value of the input" — introducing PCA's inner loop.

pub mod chebyshev;
pub mod invroot;
pub mod polyeval;
pub mod sigmoid;
pub mod sign;

pub use chebyshev::ChebyshevSeries;
pub use invroot::{invsqrt_eval, invsqrt_loop, invsqrt_step, reciprocal_eval, reciprocal_inline};
pub use polyeval::{eval_chebyshev, eval_monomial};
pub use sigmoid::{sigmoid_approx, sigmoid_eval, sigmoid_exact, SIGMOID_RANGE};
pub use sign::{sign_approx, sign_eval, step_approx};
