//! Composite minimax sign approximation (Lee et al. \[41\]).
//!
//! `sign(x)` over `[−1, −ε] ∪ [ε, 1]` is approximated by a composition of
//! low-degree odd polynomials: each stage maps values toward ±1, and
//! composing stages sharpens the transition exponentially while keeping
//! the multiplicative depth to the *sum of the stages' log-depths*. The
//! paper uses degrees {15, 15, 27} for a total depth of 13 (§7).
//!
//! We instantiate the classical smoothing family
//! `f_k(x) = Σ_{i=0..k} binom(2i, i)/4ⁱ · x(1−x²)ⁱ` (degree `2k+1`), which
//! satisfies `f_k([−1,1]) ⊆ [−1,1]` and has contraction `1 − f_k(x) ≈
//! (1−x²)^{k+1}` near the edges: stages f₇ (degree 15), f₇ (degree 15),
//! f₁₃ (degree 27) — exactly the paper's degree profile.

use halo_ir::{FunctionBuilder, ValueId};

use crate::approx::polyeval::eval_monomial;

/// Monomial coefficients of `f_k` (degree `2k+1`, odd).
#[must_use]
pub fn f_k_coeffs(k: usize) -> Vec<f64> {
    // x·(1−x²)ⁱ expanded: coefficients of x^{2j+1} are binom(i, j)·(−1)^j.
    let mut coeffs = vec![0.0; 2 * k + 2];
    let mut central = 1.0f64; // binom(2i, i)/4^i
    for i in 0..=k {
        if i > 0 {
            // binom(2i, i)/4^i = prod_{m=1..i} (2m−1)/(2m)
            central *= (2.0 * i as f64 - 1.0) / (2.0 * i as f64);
        }
        // Add central · x·(1−x²)^i.
        let mut binom = 1.0f64;
        for j in 0..=i {
            if j > 0 {
                binom *= (i - j + 1) as f64 / j as f64;
            }
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            coeffs[2 * j + 1] += central * sign * binom;
        }
    }
    coeffs
}

/// Plain-math reference for one stage.
#[must_use]
pub fn f_k_eval(k: usize, x: f64) -> f64 {
    let coeffs = f_k_coeffs(k);
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Plain-math reference for the full composite sign.
#[must_use]
pub fn sign_eval(x: f64) -> f64 {
    f_k_eval(13, f_k_eval(7, f_k_eval(7, x)))
}

/// Emits the composite sign approximation over a ciphertext `x ∈ [−1, 1]`:
/// stages of degree 15, 15, 27 — multiplicative depth 4 + 4 + 5 = 13,
/// matching the paper's accounting.
pub fn sign_approx(b: &mut FunctionBuilder, x: ValueId) -> ValueId {
    let s1 = eval_monomial(b, x, &f_k_coeffs(7));
    let s2 = eval_monomial(b, s1, &f_k_coeffs(7));
    eval_monomial(b, s2, &f_k_coeffs(13))
}

/// Emits `(1 + sign(x))/2` — a soft indicator for `x > 0`.
pub fn step_approx(b: &mut FunctionBuilder, x: ValueId) -> ValueId {
    let s = sign_approx(b, x);
    let half = b.const_splat(0.5);
    let sh = b.mul(s, half);
    b.add(sh, half)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::analysis::max_mult_depth;
    use halo_runtime::{reference_run, Inputs};

    #[test]
    fn f_k_degrees_match_paper_profile() {
        assert_eq!(f_k_coeffs(7).len() - 1, 15);
        assert_eq!(f_k_coeffs(13).len() - 1, 27);
    }

    #[test]
    fn f3_matches_closed_form() {
        // f₃(x) = (35x − 35x³ + 21x⁵ − 5x⁷)/16.
        let c = f_k_coeffs(3);
        assert!((c[1] - 35.0 / 16.0).abs() < 1e-12);
        assert!((c[3] + 35.0 / 16.0).abs() < 1e-12);
        assert!((c[5] - 21.0 / 16.0).abs() < 1e-12);
        assert!((c[7] + 5.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn composite_sign_is_accurate_outside_epsilon() {
        for i in 1..=40 {
            let x = 0.05 + 0.95 * i as f64 / 40.0;
            let s = sign_eval(x.min(1.0));
            assert!((s - 1.0).abs() < 2e-3, "sign({x}) = {s}");
            let s = sign_eval(-x.min(1.0));
            assert!((s + 1.0).abs() < 2e-3, "sign(−{x}) = {s}");
        }
        assert!(sign_eval(0.0).abs() < 1e-12, "odd function");
    }

    #[test]
    fn stages_map_unit_interval_into_itself() {
        for i in 0..=100 {
            let x = -1.0 + 0.02 * i as f64;
            for k in [7usize, 13] {
                let y = f_k_eval(k, x);
                assert!(y.abs() <= 1.0 + 1e-9, "f_{k}({x}) = {y}");
            }
        }
    }

    #[test]
    fn homomorphic_sign_matches_reference_and_depth_13() {
        let mut b = FunctionBuilder::new("sign", 8);
        let x = b.input_cipher("x");
        let s = sign_approx(&mut b, x);
        b.ret(&[s]);
        let f = b.finish();
        let depth = max_mult_depth(&f, f.entry);
        assert_eq!(depth, 13, "paper: depth 13 for degrees {{15,15,27}}");
        let xs = vec![0.9, -0.5, 0.2, -0.08, 0.04, 1.0, -1.0, 0.0];
        let out = reference_run(&f, &Inputs::new().cipher("x", xs.clone()), 8).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            assert!(
                (out[0][i] - sign_eval(x)).abs() < 1e-9,
                "x = {x}: {} vs {}",
                out[0][i],
                sign_eval(x)
            );
        }
    }

    #[test]
    fn step_is_zero_one_indicator() {
        let mut b = FunctionBuilder::new("step", 8);
        let x = b.input_cipher("x");
        let s = step_approx(&mut b, x);
        b.ret(&[s]);
        let f = b.finish();
        let out = reference_run(&f, &Inputs::new().cipher("x", vec![0.5, -0.5]), 8).unwrap();
        assert!((out[0][0] - 1.0).abs() < 2e-3);
        assert!(out[0][1].abs() < 2e-3);
    }
}
