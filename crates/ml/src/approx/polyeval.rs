//! Log-depth homomorphic polynomial evaluation.
//!
//! Horner's rule would consume one ciphertext level per degree — a
//! degree-96 sigmoid would be impossible. The recursive
//! Paterson–Stockmeyer decomposition used by production CKKS libraries
//! achieves multiplicative depth `⌈log₂(d+1)⌉ (+1)`:
//!
//! - **monomial basis** ([`eval_monomial`]): split `p = hi(x)·x^{2^m} + lo(x)`
//!   at the largest power of two below the degree, with `x^{2^i}` shared
//!   across the recursion via repeated squaring;
//! - **Chebyshev basis** ([`eval_chebyshev`]): same shape using
//!   `T_{p+i} = 2·T_i·T_p − T_{p−i}` to divide the series by `T_{2^m}`,
//!   with baby steps `T_0..T_7` and giant steps `T_{2^j}` from
//!   `T_{2n} = 2T_n² − 1`. The paper's depth accounting (e.g. depth 7 for
//!   the 96-degree sigmoid, §7) assumes exactly this evaluation scheme.

use halo_ir::{FunctionBuilder, ValueId};

use crate::approx::chebyshev::ChebyshevSeries;

/// Coefficients below this magnitude are treated as zero (skipping their
/// ops entirely).
const EPS: f64 = 1e-13;

/// Largest power of two ≤ `n` (`n ≥ 1`).
fn prev_power_of_two(n: usize) -> usize {
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Evaluates `Σ coeffs[i]·xⁱ` over the ciphertext `x` with log-depth.
/// Returns the result ciphertext.
///
/// # Panics
///
/// Panics if `coeffs` is empty.
pub fn eval_monomial(b: &mut FunctionBuilder, x: ValueId, coeffs: &[f64]) -> ValueId {
    assert!(!coeffs.is_empty(), "empty polynomial");
    // Powers x^(2^i) by repeated squaring, shared across the recursion.
    let mut powers = vec![x];
    let mut span = 2usize;
    while span < coeffs.len() {
        let last = *powers.last().expect("non-empty");
        powers.push(b.mul(last, last));
        span *= 2;
    }
    match rec_monomial(b, x, &powers, coeffs) {
        Some(v) => v,
        None => b.mul_zero_like(x),
    }
}

fn rec_monomial(
    b: &mut FunctionBuilder,
    x: ValueId,
    powers: &[ValueId],
    coeffs: &[f64],
) -> Option<ValueId> {
    if coeffs.len() <= 2 {
        let c0 = coeffs.first().copied().unwrap_or(0.0);
        let c1 = coeffs.get(1).copied().unwrap_or(0.0);
        let mut acc = None;
        if c1.abs() > EPS {
            let k = b.const_splat(c1);
            acc = Some(b.mul(x, k));
        }
        if c0.abs() > EPS {
            let k = b.const_splat(c0);
            acc = Some(match acc {
                Some(v) => b.add(v, k),
                None => k, // plain constant: callers may combine further
            });
        }
        return acc;
    }
    let m = (coeffs.len() - 1).next_power_of_two() / 2;
    let (lo, hi) = coeffs.split_at(m);
    let hi_v = rec_monomial(b, x, powers, hi);
    let lo_v = rec_monomial(b, x, powers, lo);
    let pow = powers[m.trailing_zeros() as usize];
    let shifted = hi_v.map(|h| b.mul(h, pow));
    match (shifted, lo_v) {
        (Some(h), Some(l)) => Some(b.add(h, l)),
        (Some(h), None) => Some(h),
        (None, l) => l,
    }
}

/// Evaluates a [`ChebyshevSeries`] over the ciphertext `x` (which lives in
/// the series' `[a, b]` domain) with log-depth. The affine domain map
/// `t = (2x − a − b)/(b − a)` is emitted first.
///
/// # Panics
///
/// Panics if the series is empty.
pub fn eval_chebyshev(b: &mut FunctionBuilder, x: ValueId, series: &ChebyshevSeries) -> ValueId {
    assert!(!series.coeffs.is_empty(), "empty series");
    // t = x·(2/(b−a)) − (a+b)/(b−a); skipped when the domain is already
    // the canonical [−1, 1].
    let t = if (series.b - series.a - 2.0).abs() < EPS && (series.a + series.b).abs() < EPS {
        x
    } else {
        let scale = b.const_splat(2.0 / (series.b - series.a));
        let shift = b.const_splat((series.a + series.b) / (series.b - series.a));
        let xs = b.mul(x, scale);
        b.sub(xs, shift)
    };

    let n = series.coeffs.len();
    // Baby steps T_1..T_7 (log-depth identities), plus giant steps T_{2^j}.
    const BASE: usize = 8;
    let one = 1.0;
    let mut babies: Vec<Option<ValueId>> = vec![None; BASE.min(n.max(2))];
    babies[1] = Some(t);
    for i in 2..babies.len() {
        let v = if i % 2 == 0 {
            // T_{2m} = 2·T_m² − 1
            let tm = babies[i / 2].expect("computed");
            let sq = b.mul(tm, tm);
            let d = b.add(sq, sq); // doubling is a free addition
            let c1 = b.const_splat(one);
            b.sub(d, c1)
        } else {
            // T_{2m+1} = 2·T_m·T_{m+1} − T_1
            let tm = babies[i / 2].expect("computed");
            let tm1 = babies[i / 2 + 1].expect("computed");
            let pr = b.mul(tm, tm1);
            let d = b.add(pr, pr);
            b.sub(d, t)
        };
        babies[i] = Some(v);
    }
    // Giant steps: T_8, T_16, … up to the largest power of two < n.
    let mut giants: Vec<(usize, ValueId)> = Vec::new();
    if n > BASE {
        // T_8 from T_4.
        let t4 = babies[4].expect("baby T4");
        let mut cur = {
            let sq = b.mul(t4, t4);
            let d = b.add(sq, sq);
            let c1 = b.const_splat(one);
            b.sub(d, c1)
        };
        let mut deg = BASE;
        giants.push((deg, cur));
        while deg * 2 < n {
            let sq = b.mul(cur, cur);
            let d = b.add(sq, sq);
            let c1 = b.const_splat(one);
            cur = b.sub(d, c1);
            deg *= 2;
            giants.push((deg, cur));
        }
    }
    match rec_chebyshev(b, &babies, &giants, &series.coeffs) {
        Some(v) => v,
        None => b.mul_zero_like(t),
    }
}

fn giant(giants: &[(usize, ValueId)], deg: usize) -> ValueId {
    giants
        .iter()
        .find(|(d, _)| *d == deg)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("giant T_{deg} missing"))
}

fn rec_chebyshev(
    b: &mut FunctionBuilder,
    babies: &[Option<ValueId>],
    giants: &[(usize, ValueId)],
    coeffs: &[f64],
) -> Option<ValueId> {
    const BASE: usize = 8;
    if coeffs.len() <= BASE {
        // Direct sum over the baby basis.
        let mut acc: Option<ValueId> = None;
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            if c.abs() <= EPS {
                continue;
            }
            let k = b.const_splat(c);
            let ti = babies[i].expect("baby computed");
            let term = b.mul(ti, k);
            acc = Some(match acc {
                Some(a) => b.add(a, term),
                None => term,
            });
        }
        let c0 = coeffs[0];
        if c0.abs() > EPS {
            let k = b.const_splat(c0);
            acc = Some(match acc {
                Some(a) => b.add(a, k),
                None => k,
            });
        }
        return acc;
    }
    // Divide by T_p, p = largest power of two ≤ degree.
    let p = prev_power_of_two(coeffs.len() - 1);
    debug_assert!(p >= BASE);
    let mut q = vec![0.0; coeffs.len() - p];
    let mut r = vec![0.0; p];
    for (j, &c) in coeffs.iter().enumerate() {
        if j < p {
            r[j] += c;
        } else if j == p {
            q[0] += c;
        } else {
            let i = j - p;
            q[i] += 2.0 * c;
            r[p - i] -= c;
        }
    }
    let q_v = rec_chebyshev(b, babies, giants, &q);
    let r_v = rec_chebyshev(b, babies, giants, &r);
    let tp = giant(giants, p);
    let shifted = q_v.map(|qv| b.mul(qv, tp));
    match (shifted, r_v) {
        (Some(h), Some(l)) => Some(b.add(h, l)),
        (Some(h), None) => Some(h),
        (None, l) => l,
    }
}

/// Helper on the builder: a zero "like" the given value (used when a
/// polynomial turns out to be identically zero).
trait ZeroLike {
    fn mul_zero_like(&mut self, v: ValueId) -> ValueId;
}

impl ZeroLike for FunctionBuilder {
    fn mul_zero_like(&mut self, v: ValueId) -> ValueId {
        let z = self.const_splat(0.0);
        self.mul(v, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::analysis::max_mult_depth;
    use halo_ir::op::TripCount;
    use halo_ir::Function;
    use halo_runtime::{reference_run, Inputs};

    /// Builds a one-shot program evaluating `build(x)` and runs it on
    /// plaintext reference semantics for each input value.
    fn run_unary(
        build: impl Fn(&mut FunctionBuilder, ValueId) -> ValueId,
        xs: &[f64],
    ) -> (Vec<f64>, Function) {
        let slots = xs.len().next_power_of_two().max(2);
        let mut b = FunctionBuilder::new("poly", slots);
        let x = b.input_cipher("x");
        let y = build(&mut b, x);
        b.ret(&[y]);
        let f = b.finish();
        let out = reference_run(&f, &Inputs::new().cipher("x", xs.to_vec()), slots).unwrap();
        (out[0].clone(), f)
    }

    #[test]
    fn monomial_matches_horner_reference() {
        let coeffs = [0.5, -1.0, 0.0, 2.0, 0.25, -0.125, 1.5];
        let xs: Vec<f64> = (0..16).map(|i| -1.0 + 0.125 * i as f64).collect();
        let (out, _) = run_unary(|b, x| eval_monomial(b, x, &coeffs), &xs);
        for (i, &x) in xs.iter().enumerate() {
            let want = coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c);
            assert!(
                (out[i] - want).abs() < 1e-9,
                "x = {x}: {} vs {want}",
                out[i]
            );
        }
    }

    #[test]
    fn monomial_depth_is_logarithmic() {
        for degree in [7usize, 15, 27, 31] {
            let coeffs: Vec<f64> = (0..=degree).map(|i| 1.0 / (i + 1) as f64).collect();
            let (_, f) = run_unary(|b, x| eval_monomial(b, x, &coeffs), &[0.5]);
            let depth = max_mult_depth(&f, f.entry);
            let bound = (usize::BITS - degree.leading_zeros()) + 1;
            assert!(
                depth <= bound,
                "degree {degree}: depth {depth} > log bound {bound}"
            );
        }
    }

    #[test]
    fn chebyshev_matches_clenshaw_reference() {
        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        let s = ChebyshevSeries::fit(sigmoid, -8.0, 8.0, 96);
        let xs: Vec<f64> = (0..32).map(|i| -7.5 + 0.47 * i as f64).collect();
        let (out, _) = run_unary(|b, x| eval_chebyshev(b, x, &s), &xs);
        for (i, &x) in xs.iter().enumerate() {
            assert!(
                (out[i] - s.eval(x)).abs() < 1e-7,
                "x = {x}: {} vs {}",
                out[i],
                s.eval(x)
            );
        }
    }

    #[test]
    fn chebyshev_depth_for_degree_96_is_about_log() {
        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        let s = ChebyshevSeries::fit(sigmoid, -8.0, 8.0, 96);
        let (_, f) = run_unary(|b, x| eval_chebyshev(b, x, &s), &[0.5]);
        let depth = max_mult_depth(&f, f.entry);
        // The paper reports multiplicative depth 7 for the 96-degree
        // sigmoid; our scheme (domain map + giants + recursion) lands
        // within a couple of levels of that.
        assert!((7..=10).contains(&depth), "depth = {depth}");
    }

    #[test]
    fn chebyshev_small_series_uses_babies_only() {
        let s = ChebyshevSeries {
            coeffs: vec![1.0, 0.5, 0.25],
            a: -1.0,
            b: 1.0,
        };
        let xs = [0.3, -0.7];
        let (out, f) = run_unary(|b, x| eval_chebyshev(b, x, &s), &xs);
        for (i, &x) in xs.iter().enumerate() {
            assert!((out[i] - s.eval(x)).abs() < 1e-12);
        }
        // No giant steps were emitted; depth stays tiny.
        let depth = max_mult_depth(&f, f.entry);
        assert!(depth <= 4, "depth = {depth}");
    }

    #[test]
    fn polynomials_inside_loops_verify() {
        // The evaluator must compose with the loop frontend.
        let mut b = FunctionBuilder::new("t", 8);
        let w0 = b.input_cipher("w0");
        let coeffs = [0.0, 1.5, 0.0, -0.5];
        let r = b.for_loop(TripCount::dynamic("n"), &[w0], 4, |b, args| {
            vec![eval_monomial(b, args[0], &coeffs)]
        });
        b.ret(&r);
        let f = b.finish();
        halo_ir::verify::verify_traced(&f).unwrap();
    }
}
