//! Chebyshev interpolation: fitting coefficients for smooth functions.
//!
//! Non-linear functions under RNS-CKKS are evaluated as polynomials; the
//! benchmarks follow Lee et al. \[41\] in using polynomial approximations
//! (degree-96 sigmoid, composite sign). This module computes Chebyshev
//! series coefficients at Chebyshev nodes — a numerically stable stand-in
//! for a full Remez exchange (the fits here are within a small constant of
//! minimax error for the smooth functions we target).

use std::f64::consts::PI;

/// A Chebyshev series `Σ cₖ·Tₖ(t)` over `t ∈ [−1, 1]`, representing a
/// function on `[a, b]` through the affine map `t = (2x − a − b)/(b − a)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChebyshevSeries {
    /// Coefficients, `c[k]` multiplying `T_k`.
    pub coeffs: Vec<f64>,
    /// Lower end of the fitted domain.
    pub a: f64,
    /// Upper end of the fitted domain.
    pub b: f64,
}

impl ChebyshevSeries {
    /// Fits `f` on `[a, b]` with a degree-`degree` Chebyshev interpolant
    /// through the `degree + 1` Chebyshev nodes.
    ///
    /// # Panics
    ///
    /// Panics if `a >= b`.
    #[must_use]
    pub fn fit(f: impl Fn(f64) -> f64, a: f64, b: f64, degree: usize) -> ChebyshevSeries {
        assert!(a < b, "invalid domain [{a}, {b}]");
        let n = degree + 1;
        let fx: Vec<f64> = (0..n)
            .map(|j| {
                let t = (PI * (j as f64 + 0.5) / n as f64).cos();
                f(0.5 * (b - a) * t + 0.5 * (a + b))
            })
            .collect();
        let coeffs = (0..n)
            .map(|k| {
                let sum: f64 = (0..n)
                    .map(|j| fx[j] * (PI * k as f64 * (j as f64 + 0.5) / n as f64).cos())
                    .sum();
                sum * if k == 0 { 1.0 } else { 2.0 } / n as f64
            })
            .collect();
        ChebyshevSeries { coeffs, a, b }
    }

    /// Evaluates the series at `x ∈ [a, b]` by Clenshaw recurrence
    /// (plain-math reference, used in tests and data generation).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let t = (2.0 * x - self.a - self.b) / (self.b - self.a);
        let (mut b1, mut b2) = (0.0f64, 0.0f64);
        for &c in self.coeffs.iter().skip(1).rev() {
            let b0 = 2.0 * t * b1 - b2 + c;
            b2 = b1;
            b1 = b0;
        }
        t * b1 - b2 + self.coeffs[0]
    }

    /// Degree of the series.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Maximum absolute error against `f` sampled at `samples` points.
    #[must_use]
    pub fn max_error(&self, f: impl Fn(f64) -> f64, samples: usize) -> f64 {
        (0..samples)
            .map(|i| {
                let x = self.a + (self.b - self.a) * i as f64 / (samples - 1) as f64;
                (self.eval(x) - f(x)).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_polynomials_exactly() {
        let f = |x: f64| 3.0 * x * x - 2.0 * x + 1.0;
        let s = ChebyshevSeries::fit(f, -1.0, 1.0, 4);
        assert!(s.max_error(f, 101) < 1e-12);
    }

    #[test]
    fn fits_sigmoid_to_high_accuracy_at_degree_96() {
        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        let s = ChebyshevSeries::fit(sigmoid, -8.0, 8.0, 96);
        assert_eq!(s.degree(), 96);
        assert!(
            s.max_error(sigmoid, 2001) < 1e-6,
            "err = {}",
            s.max_error(sigmoid, 2001)
        );
    }

    #[test]
    fn domain_mapping_is_affine() {
        let f = |x: f64| x;
        let s = ChebyshevSeries::fit(f, 2.0, 6.0, 3);
        assert!((s.eval(2.0) - 2.0).abs() < 1e-12);
        assert!((s.eval(6.0) - 6.0).abs() < 1e-12);
        assert!((s.eval(4.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clenshaw_matches_direct_sum() {
        let s = ChebyshevSeries {
            coeffs: vec![0.5, -1.0, 0.25, 0.125],
            a: -1.0,
            b: 1.0,
        };
        for i in 0..=20 {
            let t: f64 = -1.0 + 0.1 * i as f64;
            // Direct: T0=1, T1=t, T2=2t²−1, T3=4t³−3t.
            let direct =
                0.5 - 1.0 * t + 0.25 * (2.0 * t * t - 1.0) + 0.125 * (4.0 * t * t * t - 3.0 * t);
            assert!((s.eval(t) - direct).abs() < 1e-12, "t = {t}");
        }
    }
}
