//! Degree-96 sigmoid approximation (paper §7: "the sigmoid function
//! utilizing a 96th-order single polynomial").

use halo_ir::{FunctionBuilder, ValueId};

use crate::approx::chebyshev::ChebyshevSeries;
use crate::approx::polyeval::eval_chebyshev;

/// The fitted domain half-width: logits are expected in `[−8, 8]`.
pub const SIGMOID_RANGE: f64 = 8.0;

/// Exact sigmoid (plain-math reference).
#[must_use]
pub fn sigmoid_exact(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// The degree-96 Chebyshev fit of the sigmoid on `[−8, 8]`.
#[must_use]
pub fn sigmoid_series() -> ChebyshevSeries {
    ChebyshevSeries::fit(sigmoid_exact, -SIGMOID_RANGE, SIGMOID_RANGE, 96)
}

/// Plain-math evaluation of the approximation (ground truth for RMSE).
#[must_use]
pub fn sigmoid_eval(x: f64) -> f64 {
    sigmoid_series().eval(x.clamp(-SIGMOID_RANGE, SIGMOID_RANGE))
}

/// Emits the degree-96 sigmoid over a ciphertext of logits in `[−8, 8]`.
pub fn sigmoid_approx(b: &mut FunctionBuilder, x: ValueId) -> ValueId {
    let series = sigmoid_series();
    eval_chebyshev(b, x, &series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::analysis::max_mult_depth;
    use halo_runtime::{reference_run, Inputs};

    #[test]
    fn approximation_error_is_small_on_domain() {
        let s = sigmoid_series();
        assert_eq!(s.degree(), 96);
        assert!(s.max_error(sigmoid_exact, 4001) < 1e-6);
    }

    #[test]
    fn homomorphic_sigmoid_matches_reference() {
        let mut b = FunctionBuilder::new("sigmoid", 8);
        let x = b.input_cipher("x");
        let s = sigmoid_approx(&mut b, x);
        b.ret(&[s]);
        let f = b.finish();
        let xs = vec![-6.0, -2.0, -0.5, 0.0, 0.5, 2.0, 6.0, 7.9];
        let out = reference_run(&f, &Inputs::new().cipher("x", xs.clone()), 8).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            assert!(
                (out[0][i] - sigmoid_exact(x)).abs() < 1e-5,
                "x = {x}: {} vs {}",
                out[0][i],
                sigmoid_exact(x)
            );
        }
        let depth = max_mult_depth(&f, f.entry);
        assert!((7..=10).contains(&depth), "depth = {depth}");
    }
}
