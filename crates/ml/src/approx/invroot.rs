//! Iterative inverse square root and reciprocal (Newton/Goldschmidt-style).
//!
//! The paper's PCA benchmark approximates `sqrt` "iteratively … hence the
//! sqrt function introduces an inner loop within the loop of PCA" (§7).
//! We use the inverse-square-root form (what power iteration actually
//! needs to normalize its vector): a Householder-order update
//!
//! ```text
//! u = t·y²;   y ← y·(15 − 10u + 3u²)/8
//! ```
//!
//! which converges cubically to `1/√t` for `t ∈ (0, 1]` from `y₀ = 1`.
//! Two update steps form one loop iteration, giving the inner body the
//! "long multiplicative depth" the paper relies on (unrolling is not
//! profitable, §7.4). K-means' mean computation uses the companion
//! Newton reciprocal `y ← y·(2 − t·y)`.

use halo_ir::op::TripCount;
use halo_ir::{FunctionBuilder, ValueId};

/// One Householder inverse-sqrt update, emitted inline.
/// `y' = y·(15 − 10·t·y² + 3·(t·y²)²)/8`.
pub fn invsqrt_step(b: &mut FunctionBuilder, t: ValueId, y: ValueId) -> ValueId {
    let y2 = b.mul(y, y);
    let u = b.mul(t, y2);
    let u2 = b.mul(u, u);
    let c10 = b.const_splat(10.0 / 8.0);
    let c3 = b.const_splat(3.0 / 8.0);
    let c15 = b.const_splat(15.0 / 8.0);
    let t10 = b.mul(u, c10);
    let t3 = b.mul(u2, c3);
    let s = b.sub(c15, t10);
    let s = b.add(s, t3);
    b.mul(y, s)
}

/// Emits the PCA inner loop: `iters` iterations of two inverse-sqrt
/// updates over the loop-carried `y`, starting from `y₀ = 1` (encrypted —
/// the carried variable must be a ciphertext). Returns `≈ 1/√t`.
///
/// `t` must be a ciphertext in `(0, 1]`.
pub fn invsqrt_loop(
    b: &mut FunctionBuilder,
    t: ValueId,
    y0: ValueId,
    iters: TripCount,
    num_elems: usize,
) -> ValueId {
    let r = b.for_loop(iters, &[y0], num_elems, |b, args| {
        let y = invsqrt_step(b, t, args[0]);
        let y = invsqrt_step(b, t, y);
        vec![y]
    });
    r[0]
}

/// Plain-math reference for [`invsqrt_loop`].
#[must_use]
pub fn invsqrt_eval(t: f64, iters: u64) -> f64 {
    let mut y = 1.0f64;
    for _ in 0..2 * iters {
        let u = t * y * y;
        y *= (15.0 - 10.0 * u + 3.0 * u * u) / 8.0;
    }
    y
}

/// Emits `n` Newton reciprocal steps `y ← y·(2 − t·y)` from `y₀ = 2 − t`,
/// converging to `1/t` for `t ∈ (0, 2)`. Returns the final `y`.
pub fn reciprocal_inline(b: &mut FunctionBuilder, t: ValueId, n: usize) -> ValueId {
    let two = b.const_splat(2.0);
    let mut y = b.sub(two, t);
    for _ in 0..n {
        let ty = b.mul(t, y);
        let two = b.const_splat(2.0);
        let corr = b.sub(two, ty);
        y = b.mul(y, corr);
    }
    y
}

/// Plain-math reference for [`reciprocal_inline`].
#[must_use]
pub fn reciprocal_eval(t: f64, n: usize) -> f64 {
    let mut y = 2.0 - t;
    for _ in 0..n {
        y *= 2.0 - t * y;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::analysis::max_mult_depth;
    use halo_runtime::{reference_run, Inputs};

    #[test]
    fn invsqrt_reference_converges_cubically() {
        for &t in &[0.04f64, 0.25, 0.5, 0.9, 1.0] {
            let y = invsqrt_eval(t, 4);
            assert!(
                (y - 1.0 / t.sqrt()).abs() < 1e-6,
                "t = {t}: {y} vs {}",
                1.0 / t.sqrt()
            );
        }
    }

    #[test]
    fn reciprocal_reference_converges() {
        // Newton's reciprocal is quadratic with e₀ = |1 − t·y₀|; small t
        // needs more steps (e₀ close to 1).
        for &t in &[0.1f64, 0.5, 1.0, 1.5] {
            let y = reciprocal_eval(t, 8);
            assert!((y - 1.0 / t).abs() < 1e-6, "t = {t}: {y}");
        }
    }

    #[test]
    fn homomorphic_invsqrt_loop_matches_reference() {
        let mut b = FunctionBuilder::new("invsqrt", 8);
        let t = b.input_cipher("t");
        let y0 = b.input_cipher("y0");
        let r = invsqrt_loop(&mut b, t, y0, TripCount::dynamic("k"), 8);
        b.ret(&[r]);
        let f = b.finish();
        let out = reference_run(
            &f,
            &Inputs::new()
                .cipher("t", vec![0.25, 0.81])
                .cipher("y0", vec![1.0])
                .env("k", 4),
            8,
        )
        .unwrap();
        assert!((out[0][0] - 2.0).abs() < 1e-6);
        assert!((out[0][1] - 1.0 / 0.9).abs() < 1e-6);
    }

    #[test]
    fn inner_body_depth_defeats_unrolling() {
        // Two Householder steps per iteration: depth ≥ 9, so the paper's
        // unroll factor ⌊16/depth⌋ is 1 — PCA's inner loop stays rolled.
        let mut b = FunctionBuilder::new("inner", 8);
        let t = b.input_cipher("t");
        let y0 = b.input_cipher("y0");
        let r = invsqrt_loop(&mut b, t, y0, TripCount::dynamic("k"), 8);
        b.ret(&[r]);
        let f = b.finish();
        let body = f.for_body(f.loops_in_block(f.entry)[0]);
        let depth = max_mult_depth(&f, body);
        assert!(depth >= 9, "depth = {depth}");
        assert!(16 / depth <= 1, "unroll factor must be 1");
    }

    #[test]
    fn homomorphic_reciprocal_matches_reference() {
        let mut b = FunctionBuilder::new("recip", 8);
        let t = b.input_cipher("t");
        let r = reciprocal_inline(&mut b, t, 5);
        b.ret(&[r]);
        let f = b.finish();
        let out = reference_run(&f, &Inputs::new().cipher("t", vec![0.5, 1.25]), 8).unwrap();
        assert!((out[0][0] - 2.0).abs() < 1e-5, "{}", out[0][0]);
        assert!((out[0][1] - 0.8).abs() < 1e-9, "{}", out[0][1]);
    }
}
