//! Deterministic dataset generation for the benchmarks.
//!
//! The paper uses 4096 randomly generated inputs for the regressions,
//! random clusters for K-means/SVM, the iris dataset for PCA, and the
//! breast-cancer dataset for logistic regression (§7). All generators here
//! are seeded (runs are reproducible); the UCI datasets are replaced by
//! statistically matched synthetic equivalents (see `DESIGN.md` §4) —
//! `iris_like` samples three 4-dimensional Gaussian clusters centered on
//! the iris class means.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Gaussian-ish sample via the sum of uniforms (Irwin–Hall, variance-matched).
fn gauss(r: &mut StdRng, mean: f64, std: f64) -> f64 {
    let s: f64 = (0..12).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
    mean + std * s
}

/// `n` samples of `y = slope·x + intercept + noise`, `x ∈ [−1, 1]`.
#[must_use]
pub fn linear_data(n: usize, slope: f64, intercept: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut r = rng(seed);
    let x: Vec<f64> = (0..n).map(|_| r.gen_range(-1.0..1.0)).collect();
    let y = x
        .iter()
        .map(|&xi| slope * xi + intercept + gauss(&mut r, 0.0, 0.02))
        .collect();
    (x, y)
}

/// `n` samples of `y = c₂x² + c₁x + c₀ + noise`, `x ∈ [−1, 1]`.
#[must_use]
pub fn polynomial_data(n: usize, c: [f64; 3], seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut r = rng(seed);
    let x: Vec<f64> = (0..n).map(|_| r.gen_range(-1.0..1.0)).collect();
    let y = x
        .iter()
        .map(|&xi| c[2] * xi * xi + c[1] * xi + c[0] + gauss(&mut r, 0.0, 0.02))
        .collect();
    (x, y)
}

/// `n` samples over `k` features in `[−1, 1]` with a ground-truth linear
/// model; returns `(features[k][n], y)`.
#[must_use]
pub fn multivariate_data(n: usize, k: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut r = rng(seed);
    let weights: Vec<f64> = (0..k).map(|i| 0.3 + 0.1 * i as f64).collect();
    let xs: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..n).map(|_| r.gen_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|s| {
            let dot: f64 = (0..k).map(|f| weights[f] * xs[f][s]).sum();
            dot + 0.2 + gauss(&mut r, 0.0, 0.02)
        })
        .collect();
    (xs, y)
}

/// Binary classification: `x ∈ [−1, 1]`, labels from a logistic model
/// with the given slope. Returns `(x, y ∈ {0, 1})`.
#[must_use]
pub fn classification_data(n: usize, slope: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut r = rng(seed);
    let x: Vec<f64> = (0..n).map(|_| r.gen_range(-1.0..1.0)).collect();
    let y = x
        .iter()
        .map(|&xi| {
            let p = 1.0 / (1.0 + (-slope * xi).exp());
            if r.gen_range(0.0..1.0) < p {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    (x, y)
}

/// Two 1-D clusters in `[0, 1]` around the given centers.
#[must_use]
pub fn cluster_data(n: usize, centers: [f64; 2], spread: f64, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            let c = centers[i % 2];
            (c + gauss(&mut r, 0.0, spread)).clamp(0.0, 1.0)
        })
        .collect()
}

/// Linearly separable-ish SVM data: `(x ∈ [−1, 1], y ∈ {−1, +1})` with a
/// boundary at `boundary`.
#[must_use]
pub fn svm_data(n: usize, boundary: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut r = rng(seed);
    let x: Vec<f64> = (0..n).map(|_| r.gen_range(-1.0..1.0)).collect();
    let y = x
        .iter()
        .map(|&xi| {
            let noisy = xi - boundary + gauss(&mut r, 0.0, 0.05);
            if noisy >= 0.0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    (x, y)
}

/// Iris class means (sepal length/width, petal length/width) and within-
/// class standard deviations — the statistics our synthetic stand-in
/// matches (see `DESIGN.md` §4, substitution 4).
const IRIS_MEANS: [[f64; 4]; 3] = [
    [5.01, 3.43, 1.46, 0.25],
    [5.94, 2.77, 4.26, 1.33],
    [6.59, 2.97, 5.55, 2.03],
];
const IRIS_STDS: [[f64; 4]; 3] = [
    [0.35, 0.38, 0.17, 0.11],
    [0.52, 0.31, 0.47, 0.20],
    [0.64, 0.32, 0.55, 0.27],
];

/// `n` iris-like samples (columns = 4 features, scaled into `[0, 1]` by
/// dividing by 8), cycling through the three classes.
#[must_use]
pub fn iris_like(n: usize, seed: u64) -> Vec<[f64; 4]> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            let c = i % 3;
            let mut s = [0.0; 4];
            for f in 0..4 {
                s[f] = (gauss(&mut r, IRIS_MEANS[c][f], IRIS_STDS[c][f]) / 8.0).clamp(0.0, 1.0);
            }
            s
        })
        .collect()
}

/// Pads `data` with zeros to `len` (for window-sum layouts that must not
/// wrap real samples cyclically).
///
/// # Panics
///
/// Panics if `data` is longer than `len`.
#[must_use]
pub fn zero_pad(mut data: Vec<f64>, len: usize) -> Vec<f64> {
    assert!(data.len() <= len, "{} > {len}", data.len());
    data.resize(len, 0.0);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(linear_data(16, 0.7, 0.1, 42), linear_data(16, 0.7, 0.1, 42));
        assert_ne!(linear_data(16, 0.7, 0.1, 42), linear_data(16, 0.7, 0.1, 43));
    }

    #[test]
    fn linear_data_follows_model() {
        let (x, y) = linear_data(4096, 0.7, 0.1, 1);
        let mx = x.iter().sum::<f64>() / x.len() as f64;
        let my = y.iter().sum::<f64>() / y.len() as f64;
        let cov: f64 = x.iter().zip(&y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let var: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
        assert!((cov / var - 0.7).abs() < 0.02);
    }

    #[test]
    fn classification_labels_are_binary_and_correlated() {
        let (x, y) = classification_data(2048, 4.0, 7);
        assert!(y.iter().all(|&v| v == 0.0 || v == 1.0));
        let pos_mean: f64 = x
            .iter()
            .zip(&y)
            .filter(|&(_, &l)| l == 1.0)
            .map(|(&a, _)| a)
            .sum::<f64>()
            / y.iter().filter(|&&l| l == 1.0).count() as f64;
        let neg_mean: f64 = x
            .iter()
            .zip(&y)
            .filter(|&(_, &l)| l == 0.0)
            .map(|(&a, _)| a)
            .sum::<f64>()
            / y.iter().filter(|&&l| l == 0.0).count() as f64;
        assert!(pos_mean > neg_mean + 0.3);
    }

    #[test]
    fn clusters_form_around_centers() {
        let x = cluster_data(2048, [0.25, 0.75], 0.04, 3);
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let low: Vec<f64> = x.iter().copied().filter(|&v| v < 0.5).collect();
        let high: Vec<f64> = x.iter().copied().filter(|&v| v >= 0.5).collect();
        let lm = low.iter().sum::<f64>() / low.len() as f64;
        let hm = high.iter().sum::<f64>() / high.len() as f64;
        assert!((lm - 0.25).abs() < 0.05, "{lm}");
        assert!((hm - 0.75).abs() < 0.05, "{hm}");
    }

    #[test]
    fn svm_labels_match_boundary() {
        let (x, y) = svm_data(1024, 0.1, 5);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(&xi, &yi)| (xi - 0.1 >= 0.0) == (yi > 0.0))
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.9);
    }

    #[test]
    fn iris_like_is_in_range_and_clustered() {
        let iris = iris_like(150, 11);
        assert_eq!(iris.len(), 150);
        for s in &iris {
            for &f in s {
                assert!((0.0..=1.0).contains(&f));
            }
        }
        // Petal length (feature 2) separates class 0 from class 2.
        let c0: f64 = iris.iter().step_by(3).map(|s| s[2]).sum::<f64>() / 50.0;
        let c2: f64 = iris.iter().skip(2).step_by(3).map(|s| s[2]).sum::<f64>() / 50.0;
        assert!(c2 > c0 + 0.3);
    }

    #[test]
    fn zero_pad_extends_with_zeros() {
        assert_eq!(zero_pad(vec![1.0, 2.0], 4), vec![1.0, 2.0, 0.0, 0.0]);
    }
}
