//! The seven benchmark programs (paper §7, Table 4).
//!
//! Every benchmark implements [`MlBenchmark`]: it traces its program over
//! the `halo-ir` frontend (loops with symbolic trip counts — the thing
//! DaCapo cannot compile), binds its dataset as [`Inputs`], and reports
//! the Table 4 metadata (loop depth, carried-variable counts, approximated
//! functions).

use halo_ir::op::TripCount;
use halo_ir::{Function, FunctionBuilder, ValueId};
use halo_runtime::Inputs;

pub mod kmeans;
pub mod logistic;
pub mod pca;
pub mod regression;
pub mod svm;

pub use kmeans::KMeans;
pub use logistic::Logistic;
pub use pca::Pca;
pub use regression::{Linear, Multivariate, Polynomial};
pub use svm::Svm;

/// Size configuration for a benchmark instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchSpec {
    /// Ciphertext slot count (`N/2`).
    pub slots: usize,
    /// Valid elements (samples) per ciphertext — the packing window size
    /// the programmer declares (paper §6.1). Must be a power of two.
    pub num_elems: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl BenchSpec {
    /// The paper's scale: 65 536 slots, 4 096 samples.
    #[must_use]
    pub fn paper() -> BenchSpec {
        BenchSpec {
            slots: 1 << 16,
            num_elems: 1 << 12,
            seed: 0xDA7A,
        }
    }

    /// Small instance for tests: 64 slots, 4 samples (so even the
    /// 9-variable Multivariate benchmark packs: 9×4 ≤ 64).
    #[must_use]
    pub fn test_small() -> BenchSpec {
        BenchSpec {
            slots: 64,
            num_elems: 4,
            seed: 0xDA7A,
        }
    }

    /// Mid-size instance for integration tests: 1 024 slots, 64 samples.
    #[must_use]
    pub fn test_medium() -> BenchSpec {
        BenchSpec {
            slots: 1 << 10,
            num_elems: 64,
            seed: 0xDA7A,
        }
    }
}

/// A benchmark program: tracing, inputs, and Table 4 metadata.
pub trait MlBenchmark {
    /// Display name (Table 4 row).
    fn name(&self) -> &'static str;

    /// Nesting depth of its loops (Table 4 "Loop Depth").
    fn loop_depth(&self) -> usize;

    /// Loop-carried variable counts per nesting level (Table 4).
    fn carried_vars(&self) -> Vec<usize>;

    /// Approximated non-linear functions (Table 4), `"-"` if none.
    fn approx_functions(&self) -> &'static str {
        "-"
    }

    /// Trip-count symbols, outermost first (one per loop level).
    fn trip_symbols(&self) -> Vec<&'static str> {
        vec!["iters"]
    }

    /// Traces the program with one trip count per loop level
    /// (outermost first).
    ///
    /// # Panics
    ///
    /// Panics if `trips.len() != self.loop_depth()`.
    fn trace(&self, spec: &BenchSpec, trips: &[TripCount]) -> Function;

    /// The benchmark's input bindings (data only; trip symbols are bound
    /// by the caller via [`Inputs::env`]).
    fn inputs(&self, spec: &BenchSpec) -> Inputs;

    /// Traces with dynamic (symbolic) trip counts — the HALO-side form.
    fn trace_dynamic(&self, spec: &BenchSpec) -> Function {
        let trips: Vec<TripCount> = self
            .trip_symbols()
            .iter()
            .map(|s| TripCount::dynamic(*s))
            .collect();
        self.trace(spec, &trips)
    }

    /// Traces with constant trip counts — the only form DaCapo accepts.
    fn trace_constant(&self, spec: &BenchSpec, iters: &[u64]) -> Function {
        let trips: Vec<TripCount> = iters.iter().map(|&n| TripCount::Constant(n)).collect();
        self.trace(spec, &trips)
    }
}

/// All seven benchmarks in the paper's presentation order.
#[must_use]
pub fn all_benchmarks() -> Vec<Box<dyn MlBenchmark>> {
    vec![
        Box::new(Linear),
        Box::new(Polynomial),
        Box::new(Multivariate),
        Box::new(Logistic),
        Box::new(KMeans),
        Box::new(Svm),
        Box::new(Pca),
    ]
}

/// The six flat-loop benchmarks (Figure 4 / Tables 5–7 exclude PCA).
#[must_use]
pub fn flat_benchmarks() -> Vec<Box<dyn MlBenchmark>> {
    vec![
        Box::new(Linear),
        Box::new(Polynomial),
        Box::new(Multivariate),
        Box::new(Logistic),
        Box::new(KMeans),
        Box::new(Svm),
    ]
}

/// Emits `mean(v) = rotate_sum(v, num_elems)·(1/divisor)` — every slot of
/// the result holds the mean over the sample window. The cyclic data
/// replication performed at encryption time makes every window sum equal
/// to the total.
pub(crate) fn mean_all(
    b: &mut FunctionBuilder,
    v: ValueId,
    num_elems: usize,
    divisor: f64,
) -> ValueId {
    let sum = b.rotate_sum(v, num_elems);
    let inv = b.const_splat(1.0 / divisor);
    b.mul(sum, inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::verify::verify_traced;

    #[test]
    fn all_benchmarks_trace_and_verify() {
        let spec = BenchSpec::test_small();
        for bench in all_benchmarks() {
            let f = bench.trace_dynamic(&spec);
            verify_traced(&f).unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
            assert_eq!(
                bench.trip_symbols().len(),
                bench.loop_depth(),
                "{}",
                bench.name()
            );
            assert_eq!(
                bench.carried_vars().len(),
                bench.loop_depth(),
                "{}",
                bench.name()
            );
        }
    }

    #[test]
    fn table4_metadata_matches_paper() {
        let names: Vec<_> = all_benchmarks().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "Linear",
                "Polynomial",
                "Multivariate",
                "Logistic",
                "K-means",
                "SVM",
                "PCA"
            ]
        );
        let carried: Vec<Vec<usize>> = all_benchmarks().iter().map(|b| b.carried_vars()).collect();
        assert_eq!(
            carried,
            vec![
                vec![2],
                vec![3],
                vec![9],
                vec![1],
                vec![2],
                vec![3],
                vec![1, 1]
            ]
        );
        let depths: Vec<usize> = all_benchmarks().iter().map(|b| b.loop_depth()).collect();
        assert_eq!(depths, vec![1, 1, 1, 1, 1, 1, 2]);
    }

    #[test]
    fn loop_structure_matches_declared_depth() {
        let spec = BenchSpec::test_small();
        for bench in all_benchmarks() {
            let f = bench.trace_dynamic(&spec);
            let top = f.loops_in_block(f.entry);
            assert_eq!(top.len(), 1, "{}", bench.name());
            let body = f.for_body(top[0]);
            let inner = f.loops_in_block(body);
            let expected_inner = if bench.loop_depth() == 2 { 1 } else { 0 };
            assert_eq!(inner.len(), expected_inner, "{}", bench.name());
            // Carried-variable counts match the traced loops.
            assert_eq!(
                f.block(body).args.len(),
                bench.carried_vars()[0],
                "{}",
                bench.name()
            );
        }
    }
}
