//! Logistic regression (paper §7): one loop-carried weight, a degree-96
//! sigmoid in the body.
//!
//! The single carried variable means packing cannot help, and the deep
//! sigmoid body defeats unrolling — target-level tuning (§6.3) is the
//! optimization that bites here, as the paper reports ("target level
//! tuning alone achieved up to a 19% performance improvement in
//! Logistic").

use halo_ir::op::TripCount;
use halo_ir::{Function, FunctionBuilder};
use halo_runtime::Inputs;

use crate::approx::sigmoid::sigmoid_approx;
use crate::bench::{mean_all, BenchSpec, MlBenchmark};
use crate::data;

/// Learning rate.
const LR: f64 = 1.5;
/// Logit gain: predictions use `σ(GAIN·w·x)` so convergence at |w| ≤ 1
/// still produces confident probabilities within the sigmoid fit domain.
const GAIN: f64 = 4.0;

/// Logistic regression, 1 loop-carried variable, sigmoid approximation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Logistic;

impl MlBenchmark for Logistic {
    fn name(&self) -> &'static str {
        "Logistic"
    }

    fn loop_depth(&self) -> usize {
        1
    }

    fn carried_vars(&self) -> Vec<usize> {
        vec![1]
    }

    fn approx_functions(&self) -> &'static str {
        "sigmoid"
    }

    fn trace(&self, spec: &BenchSpec, trips: &[TripCount]) -> Function {
        assert_eq!(trips.len(), 1);
        let n = spec.num_elems;
        let mut b = FunctionBuilder::new("logistic_regression", spec.slots);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let w0 = b.const_splat(0.0); // plain init → peeled first iteration
        let r = b.for_loop(trips[0].clone(), &[w0], n, |b, args| {
            let w = args[0];
            let wx = b.mul(w, x);
            let gain = b.const_splat(GAIN);
            let logits = b.mul(wx, gain);
            let p = sigmoid_approx(b, logits);
            let err = b.sub(p, y);
            let ex = b.mul(err, x);
            let g = mean_all(b, ex, n, n as f64 / LR);
            vec![b.sub(w, g)]
        });
        b.ret(&r);
        b.finish()
    }

    fn inputs(&self, spec: &BenchSpec) -> Inputs {
        let (x, y) = data::classification_data(spec.num_elems, 4.0, spec.seed);
        Inputs::new().cipher("x", x).cipher("y", y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::analysis::max_mult_depth;
    use halo_runtime::reference_run;

    #[test]
    fn training_learns_a_positive_weight() {
        let spec = BenchSpec {
            slots: 512,
            num_elems: 512,
            seed: 5,
        };
        let f = Logistic.trace_dynamic(&spec);
        let inputs = Logistic.inputs(&spec).env("iters", 40);
        let out = reference_run(&f, &inputs, spec.slots).unwrap();
        let w = out[0][0];
        // Data is generated with a positive logistic slope: the learned
        // weight must be clearly positive and the logits in range.
        assert!(w > 0.3, "w = {w}");
        assert!(w * GAIN < 8.0, "logits stay inside the sigmoid domain");
    }

    #[test]
    fn body_depth_is_deep_but_below_budget() {
        let spec = BenchSpec::test_small();
        let f = Logistic.trace_dynamic(&spec);
        let body = f.for_body(f.loops_in_block(f.entry)[0]);
        let depth = max_mult_depth(&f, body);
        // Sigmoid (≈8) + logits (2) + gradient (2): deep enough that
        // ⌊16/depth⌋ = 1 (no unrolling), shallow enough for no extra
        // in-body bootstrap — leaving tuning as the effective lever.
        assert!((11..=16).contains(&depth), "depth = {depth}");
    }

    #[test]
    fn loss_decreases_over_iterations() {
        let spec = BenchSpec {
            slots: 256,
            num_elems: 256,
            seed: 6,
        };
        let f = Logistic.trace_dynamic(&spec);
        let (xv, yv) = data::classification_data(spec.num_elems, 4.0, spec.seed);
        let mut prev_loss = f64::INFINITY;
        for iters in [5u64, 20, 60] {
            let inputs = Logistic.inputs(&spec).env("iters", iters);
            let out = reference_run(&f, &inputs, spec.slots).unwrap();
            let w = out[0][0];
            let loss: f64 = xv
                .iter()
                .zip(&yv)
                .map(|(&xi, &yi)| {
                    let p = 1.0 / (1.0 + (-GAIN * w * xi).exp());
                    let p = p.clamp(1e-9, 1.0 - 1e-9);
                    -(yi * p.ln() + (1.0 - yi) * (1.0 - p).ln())
                })
                .sum::<f64>()
                / xv.len() as f64;
            assert!(loss < prev_loss + 1e-9, "loss {loss} at {iters} iters");
            prev_loss = loss;
        }
    }
}
