//! PCA via power iteration — the nested-loop benchmark (paper §7.4).
//!
//! The outer loop carries the current principal-direction estimate `v`
//! (one ciphertext holding four per-feature windows); each iteration
//! computes `u = C·v` against the centered data and renormalizes with an
//! inverse square root, which is itself an *inner loop* of Householder
//! iterations — "the sqrt function introduces an inner loop within the
//! loop of PCA". Both loops carry one variable each (Table 4: depth 2,
//! carried 1 + 1), and both bodies are multiplicatively deep, so only
//! target-level tuning applies (§7.4).

use halo_ir::op::TripCount;
use halo_ir::{Function, FunctionBuilder, ValueId};
use halo_runtime::Inputs;

use crate::approx::invroot::invsqrt_loop;
use crate::bench::{BenchSpec, MlBenchmark};
use crate::data;

/// Feature count (iris has 4).
pub const FEATURES: usize = 4;

/// Number of real (non-pad) samples for a given window size.
#[must_use]
pub fn sample_count(num_elems: usize) -> usize {
    (num_elems * 3 / 4).clamp(1, 150)
}

/// Extracts window `j` of `v` and replicates its content across all slots
/// (mask + rotate-add ladder — the packing machinery of §6.1 used as a
/// data-layout tool).
fn extract_replicate(
    b: &mut FunctionBuilder,
    v: ValueId,
    j: usize,
    num_elems: usize,
    slots: usize,
) -> ValueId {
    let mask = b.const_mask(j * num_elems, (j + 1) * num_elems);
    let mut u = b.mul(v, mask);
    let mut step = num_elems;
    while step < slots {
        let r = b.rotate(u, step as i64);
        u = b.add(u, r);
        step *= 2;
    }
    u
}

/// Principal component analysis on iris-like data.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pca;

impl MlBenchmark for Pca {
    fn name(&self) -> &'static str {
        "PCA"
    }

    fn loop_depth(&self) -> usize {
        2
    }

    fn carried_vars(&self) -> Vec<usize> {
        vec![1, 1]
    }

    fn approx_functions(&self) -> &'static str {
        "sqrt"
    }

    fn trip_symbols(&self) -> Vec<&'static str> {
        vec!["outer", "inner"]
    }

    #[allow(clippy::too_many_lines)]
    fn trace(&self, spec: &BenchSpec, trips: &[TripCount]) -> Function {
        assert_eq!(trips.len(), 2);
        let n = spec.num_elems;
        let count = sample_count(n);
        let slots = spec.slots;
        assert!(FEATURES * n <= slots, "windows must fit the ciphertext");
        let mut b = FunctionBuilder::new("pca", slots);
        let fs: Vec<_> = (0..FEATURES)
            .map(|j| b.input_cipher(format!("f{j}")))
            .collect();
        let v0 = b.input_cipher("v0");

        // Center the features once, outside the loop: g_j = (f_j − mean)·pad.
        let mut pad = vec![1.0; count];
        pad.resize(n, 0.0);
        let pad_mask = b.const_vector(pad);
        let gs: Vec<_> = fs
            .iter()
            .map(|&fj| {
                let sum = b.rotate_sum(fj, n);
                let inv = b.const_splat(1.0 / count as f64);
                let mean = b.mul(sum, inv);
                let centered = b.sub(fj, mean);
                b.mul(centered, pad_mask)
            })
            .collect();

        let inner_trip = trips[1].clone();
        let r = b.for_loop(trips[0].clone(), &[v0], n, |b, args| {
            let v = args[0];
            // v_j replicated everywhere, then the projection p = Σ v_j·g_j.
            let vreps: Vec<_> = (0..FEATURES)
                .map(|j| extract_replicate(b, v, j, n, slots))
                .collect();
            let mut p: Option<ValueId> = None;
            for (j, &g) in gs.iter().enumerate() {
                let t = b.mul(vreps[j], g);
                p = Some(match p {
                    Some(acc) => b.add(acc, t),
                    None => t,
                });
            }
            let p = p.expect("FEATURES > 0");
            // u_j = GAIN·mean_s(g_j·p) = GAIN·(C·v)_j, replicated
            // everywhere. The gain lifts ‖u‖² into the inverse-sqrt
            // iteration's well-conditioned range (the gain cancels in
            // u/‖u‖, so the direction is unaffected).
            const GAIN: f64 = 8.0;
            let inv_count = b.const_splat(GAIN / count as f64);
            let ureps: Vec<_> = gs
                .iter()
                .map(|&g| {
                    let gp = b.mul(g, p);
                    let s = b.rotate_sum(gp, n);
                    b.mul(s, inv_count)
                })
                .collect();
            // Re-window u into a single ciphertext.
            let mut u_ct: Option<ValueId> = None;
            for (j, &uj) in ureps.iter().enumerate() {
                let mask = b.const_mask(j * n, (j + 1) * n);
                let w = b.mul(uj, mask);
                u_ct = Some(match u_ct {
                    Some(acc) => b.add(acc, w),
                    None => w,
                });
            }
            let u_ct = u_ct.expect("FEATURES > 0");
            // ‖u‖², normalized into (0, 1] (data in [0,1] ⇒ |u_j| ≤ 4).
            let mut t: Option<ValueId> = None;
            for &uj in &ureps {
                let sq = b.mul(uj, uj);
                t = Some(match t {
                    Some(acc) => b.add(acc, sq),
                    None => sq,
                });
            }
            let t = t.expect("FEATURES > 0");
            let eps = b.const_splat(1e-4);
            let ts = b.add(t, eps);
            // Inner loop: y ≈ 1/√ts (plain start ⇒ the inner loop peels).
            let y0 = b.const_splat(1.0);
            let y = invsqrt_loop(b, ts, y0, inner_trip.clone(), n);
            // v' = u/‖u‖ (the gain inside u cancels here).
            let vn = b.mul(u_ct, y);
            vec![vn]
        });
        b.ret(&r);
        b.finish()
    }

    fn inputs(&self, spec: &BenchSpec) -> Inputs {
        let n = spec.num_elems;
        let count = sample_count(n);
        let samples = data::iris_like(count, spec.seed);
        let mut inputs = Inputs::new();
        for j in 0..FEATURES {
            let col: Vec<f64> = samples.iter().map(|s| s[j]).collect();
            inputs = inputs.cipher(format!("f{j}"), data::zero_pad(col, n));
        }
        // Initial direction: equal weights, windowed layout.
        let mut v0 = Vec::with_capacity(FEATURES * n);
        for _ in 0..FEATURES {
            v0.extend(std::iter::repeat_n(0.5, n));
        }
        inputs.cipher("v0", v0)
    }
}

/// Plain-math dominant eigenvector of the (centered) covariance of
/// `samples`, via many exact power iterations — the ground truth for
/// convergence tests.
#[must_use]
pub fn dominant_eigenvector(samples: &[[f64; 4]]) -> [f64; 4] {
    let n = samples.len() as f64;
    let mut mean = [0.0f64; 4];
    for s in samples {
        for j in 0..4 {
            mean[j] += s[j] / n;
        }
    }
    let mut cov = [[0.0f64; 4]; 4];
    for s in samples {
        for i in 0..4 {
            for j in 0..4 {
                cov[i][j] += (s[i] - mean[i]) * (s[j] - mean[j]) / n;
            }
        }
    }
    let mut v = [0.5f64; 4];
    for _ in 0..200 {
        let mut u = [0.0f64; 4];
        for i in 0..4 {
            for j in 0..4 {
                u[i] += cov[i][j] * v[j];
            }
        }
        let norm = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        for i in 0..4 {
            v[i] = u[i] / norm;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::analysis::max_mult_depth;
    use halo_runtime::reference_run;

    #[test]
    fn converges_to_dominant_eigenvector() {
        let spec = BenchSpec {
            slots: 512,
            num_elems: 128,
            seed: 11,
        };
        let f = Pca.trace_dynamic(&spec);
        let inputs = Pca.inputs(&spec).env("outer", 8).env("inner", 4);
        let out = reference_run(&f, &inputs, spec.slots).unwrap();
        let got: Vec<f64> = (0..FEATURES).map(|j| out[0][j * 128]).collect();
        let samples = data::iris_like(sample_count(128), spec.seed);
        let want = dominant_eigenvector(&samples);
        // Compare up to sign via cosine similarity.
        let dot: f64 = got.iter().zip(&want).map(|(a, b)| a * b).sum();
        let ng = got.iter().map(|x| x * x).sum::<f64>().sqrt();
        let cos = dot.abs() / ng; // `want` is unit-norm
        assert!(cos > 0.999, "cos = {cos}, got = {got:?}, want = {want:?}");
        // The iterate itself is (approximately) unit-norm.
        assert!((ng - 1.0).abs() < 0.02, "norm = {ng}");
    }

    #[test]
    fn windows_hold_replicated_components() {
        let spec = BenchSpec {
            slots: 256,
            num_elems: 64,
            seed: 11,
        };
        let f = Pca.trace_dynamic(&spec);
        let inputs = Pca.inputs(&spec).env("outer", 3).env("inner", 4);
        let out = reference_run(&f, &inputs, spec.slots).unwrap();
        for j in 0..FEATURES {
            let w0 = out[0][j * 64];
            for s in 0..64 {
                assert!(
                    (out[0][j * 64 + s] - w0).abs() < 1e-9,
                    "window {j} not constant"
                );
            }
        }
    }

    #[test]
    fn both_bodies_are_too_deep_to_unroll() {
        let spec = BenchSpec::test_small();
        let f = Pca.trace_dynamic(&spec);
        let outer = f.loops_in_block(f.entry)[0];
        let outer_body = f.for_body(outer);
        let inner = f.loops_in_block(outer_body)[0];
        let inner_body = f.for_body(inner);
        let inner_depth = max_mult_depth(&f, inner_body);
        assert!(inner_depth >= 9, "inner depth = {inner_depth}");
        // §7.4: "Each loop has a long multiplicative depth, so unrolling
        // does not take an effect."
        assert!(16 / inner_depth <= 1);
        let outer_depth = max_mult_depth(&f, outer_body);
        assert!(outer_depth >= 8, "outer depth = {outer_depth}");
    }
}
