//! K-means clustering (paper §7): 2 loop-carried centroids, composite
//! `sign` for the assignment step, Newton reciprocal for the mean.
//!
//! The body's multiplicative depth far exceeds the level budget, so every
//! iteration needs in-body bootstraps on top of the head bootstraps — the
//! paper's Table 5 shows K-means as the benchmark where packing cannot
//! reduce the count (the deeper packed body needs one more reset, which
//! target-level tuning then cheapens).

use halo_ir::op::TripCount;
use halo_ir::{Function, FunctionBuilder, ValueId};
use halo_runtime::Inputs;

use crate::approx::invroot::reciprocal_inline;
use crate::approx::sign::step_approx;
use crate::bench::{BenchSpec, MlBenchmark};
use crate::data;

/// Newton steps for the reciprocal of the (normalized) cluster mass.
const RECIP_STEPS: usize = 6;
/// Ballast added to both mass and weighted sum so an (almost) empty
/// cluster keeps its previous centroid instead of dividing by zero.
const BALLAST: f64 = 0.05;

/// 1-D K-means with K = 2 over points in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct KMeans;

impl KMeans {
    /// Plain-math reference of one soft K-means update (mirrors the traced
    /// body exactly — including the polynomial sign and Newton reciprocal).
    #[must_use]
    pub fn reference_step(x: &[f64], c0: f64, c1: f64) -> (f64, f64) {
        use crate::approx::invroot::reciprocal_eval;
        use crate::approx::sign::sign_eval;
        let n = x.len() as f64;
        let update = |own: f64, other: f64| {
            let (mut mass, mut wsum) = (0.0, 0.0);
            for &xi in x {
                let d_own = (xi - own) * (xi - own);
                let d_other = (xi - other) * (xi - other);
                let m = 0.5 * (1.0 + sign_eval(d_other - d_own));
                mass += m;
                wsum += m * xi;
            }
            let t = mass / n + BALLAST;
            let s = wsum / n + BALLAST * own;
            s * reciprocal_eval(t, RECIP_STEPS)
        };
        (update(c0, c1), update(c1, c0))
    }
}

fn centroid_update(
    b: &mut FunctionBuilder,
    x: ValueId,
    own: ValueId,
    other: ValueId,
    num_elems: usize,
) -> ValueId {
    // Squared distances (x, own, other ∈ [0, 1] ⇒ diff ∈ [−1, 1]).
    let d_own = {
        let d = b.sub(x, own);
        b.mul(d, d)
    };
    let d_other = {
        let d = b.sub(x, other);
        b.mul(d, d)
    };
    let diff = b.sub(d_other, d_own);
    // Soft membership of each point in `own`'s cluster.
    let m = step_approx(b, diff);
    // Normalized mass and weighted sum, with ballast toward the old
    // centroid to keep the reciprocal well-conditioned.
    let mass_sum = b.rotate_sum(m, num_elems);
    let inv_n = b.const_splat(1.0 / num_elems as f64);
    let mass = b.mul(mass_sum, inv_n);
    let ballast = b.const_splat(BALLAST);
    let t = b.add(mass, ballast);
    let mx = b.mul(m, x);
    let wsum_raw = b.rotate_sum(mx, num_elems);
    let wsum_n = b.mul(wsum_raw, inv_n);
    let own_ballast = b.mul(own, ballast);
    let s = b.add(wsum_n, own_ballast);
    let inv = reciprocal_inline(b, t, RECIP_STEPS);
    b.mul(s, inv)
}

impl MlBenchmark for KMeans {
    fn name(&self) -> &'static str {
        "K-means"
    }

    fn loop_depth(&self) -> usize {
        1
    }

    fn carried_vars(&self) -> Vec<usize> {
        vec![2]
    }

    fn approx_functions(&self) -> &'static str {
        "sign"
    }

    fn trace(&self, spec: &BenchSpec, trips: &[TripCount]) -> Function {
        assert_eq!(trips.len(), 1);
        let n = spec.num_elems;
        let mut b = FunctionBuilder::new("kmeans", spec.slots);
        let x = b.input_cipher("x");
        // Centroids arrive encrypted (no peeling — the paper's ×40 count
        // structure for K-means).
        let c0_init = b.input_cipher("c0");
        let c1_init = b.input_cipher("c1");
        let r = b.for_loop(trips[0].clone(), &[c0_init, c1_init], n, |b, args| {
            let (c0, c1) = (args[0], args[1]);
            let c0n = centroid_update(b, x, c0, c1, n);
            let c1n = centroid_update(b, x, c1, c0, n);
            vec![c0n, c1n]
        });
        b.ret(&r);
        b.finish()
    }

    fn inputs(&self, spec: &BenchSpec) -> Inputs {
        let x = data::cluster_data(spec.num_elems, [0.25, 0.75], 0.05, spec.seed);
        Inputs::new()
            .cipher("x", x)
            .cipher("c0", vec![0.4])
            .cipher("c1", vec![0.6])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::analysis::max_mult_depth;
    use halo_runtime::reference_run;

    #[test]
    fn centroids_move_to_cluster_centers() {
        let spec = BenchSpec {
            slots: 256,
            num_elems: 256,
            seed: 3,
        };
        let f = KMeans.trace_dynamic(&spec);
        let inputs = KMeans.inputs(&spec).env("iters", 12);
        let out = reference_run(&f, &inputs, spec.slots).unwrap();
        let (c0, c1) = (out[0][0], out[1][0]);
        assert!((c0 - 0.25).abs() < 0.04, "c0 = {c0}");
        assert!((c1 - 0.75).abs() < 0.04, "c1 = {c1}");
    }

    #[test]
    fn traced_body_matches_reference_step() {
        let spec = BenchSpec {
            slots: 64,
            num_elems: 64,
            seed: 4,
        };
        let f = KMeans.trace_dynamic(&spec);
        let inputs = KMeans.inputs(&spec).env("iters", 1);
        let out = reference_run(&f, &inputs, spec.slots).unwrap();
        let x = data::cluster_data(spec.num_elems, [0.25, 0.75], 0.05, spec.seed);
        let (c0, c1) = KMeans::reference_step(&x, 0.4, 0.6);
        assert!((out[0][0] - c0).abs() < 1e-9, "{} vs {c0}", out[0][0]);
        assert!((out[1][0] - c1).abs() < 1e-9, "{} vs {c1}", out[1][0]);
    }

    #[test]
    fn body_depth_requires_in_body_bootstraps() {
        let spec = BenchSpec::test_small();
        let f = KMeans.trace_dynamic(&spec);
        let body = f.for_body(f.loops_in_block(f.entry)[0]);
        let depth = max_mult_depth(&f, body);
        assert!(depth > 16, "depth = {depth} must exceed the level budget");
    }
}
