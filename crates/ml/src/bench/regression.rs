//! The three plain-gradient-descent regressions: Linear, Polynomial, and
//! Multivariate (paper §7).
//!
//! All three iterate a short body (multiplicative depth ≈ 3) whose weights
//! start as *plaintext zeros* — so the first iteration is peeled for
//! status matching, leaving `K − 1` in-loop iterations (visible in
//! Table 5's counts: 2·39, 3·39, 9·39 head bootstraps for the
//! type-matched configuration at 40 iterations). Their shallow bodies are
//! exactly what level-aware unrolling (§6.2) exploits.

use halo_ir::op::TripCount;
use halo_ir::{Function, FunctionBuilder};
use halo_runtime::Inputs;

use crate::bench::{mean_all, BenchSpec, MlBenchmark};
use crate::data;

/// Gradient-descent learning rate shared by the regressions.
const LR: f64 = 0.25;

/// Linear regression: `y ≈ w·x + b`, 2 loop-carried variables.
#[derive(Debug, Clone, Copy, Default)]
pub struct Linear;

impl MlBenchmark for Linear {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn loop_depth(&self) -> usize {
        1
    }

    fn carried_vars(&self) -> Vec<usize> {
        vec![2]
    }

    fn trace(&self, spec: &BenchSpec, trips: &[TripCount]) -> Function {
        assert_eq!(trips.len(), 1);
        let n = spec.num_elems;
        let mut b = FunctionBuilder::new("linear_regression", spec.slots);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let w0 = b.const_splat(0.0);
        let b0 = b.const_splat(0.0);
        let r = b.for_loop(trips[0].clone(), &[w0, b0], n, |b, args| {
            let (w, bias) = (args[0], args[1]);
            let wx = b.mul(w, x);
            let pred = b.add(wx, bias);
            let err = b.sub(pred, y);
            let ex = b.mul(err, x);
            let gw = mean_all(b, ex, n, n as f64 / LR);
            let gb = mean_all(b, err, n, n as f64 / LR);
            let w2 = b.sub(w, gw);
            let b2 = b.sub(bias, gb);
            vec![w2, b2]
        });
        b.ret(&r);
        b.finish()
    }

    fn inputs(&self, spec: &BenchSpec) -> Inputs {
        let (x, y) = data::linear_data(spec.num_elems, 0.7, 0.1, spec.seed);
        Inputs::new().cipher("x", x).cipher("y", y)
    }
}

/// Polynomial regression: `y ≈ w₂x² + w₁x + b`, 3 loop-carried variables.
#[derive(Debug, Clone, Copy, Default)]
pub struct Polynomial;

impl MlBenchmark for Polynomial {
    fn name(&self) -> &'static str {
        "Polynomial"
    }

    fn loop_depth(&self) -> usize {
        1
    }

    fn carried_vars(&self) -> Vec<usize> {
        vec![3]
    }

    fn trace(&self, spec: &BenchSpec, trips: &[TripCount]) -> Function {
        assert_eq!(trips.len(), 1);
        let n = spec.num_elems;
        let mut b = FunctionBuilder::new("polynomial_regression", spec.slots);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.mul(x, x); // hoisted feature, computed once outside
        let w2_0 = b.const_splat(0.0);
        let w1_0 = b.const_splat(0.0);
        let b0 = b.const_splat(0.0);
        let r = b.for_loop(trips[0].clone(), &[w2_0, w1_0, b0], n, |b, args| {
            let (w2, w1, bias) = (args[0], args[1], args[2]);
            let t2 = b.mul(w2, x2);
            let t1 = b.mul(w1, x);
            let s = b.add(t2, t1);
            let pred = b.add(s, bias);
            let err = b.sub(pred, y);
            let e2 = b.mul(err, x2);
            let e1 = b.mul(err, x);
            let g2 = mean_all(b, e2, n, n as f64 / LR);
            let g1 = mean_all(b, e1, n, n as f64 / LR);
            let gb = mean_all(b, err, n, n as f64 / LR);
            let w2n = b.sub(w2, g2);
            let w1n = b.sub(w1, g1);
            let bn = b.sub(bias, gb);
            vec![w2n, w1n, bn]
        });
        b.ret(&r);
        b.finish()
    }

    fn inputs(&self, spec: &BenchSpec) -> Inputs {
        let (x, y) = data::polynomial_data(spec.num_elems, [0.1, -0.4, 0.6], spec.seed);
        Inputs::new().cipher("x", x).cipher("y", y)
    }
}

/// Multivariate regression over 8 features + bias: 9 loop-carried
/// variables — the paper's packing stress case (Table 5: 351 → 39
/// bootstraps from packing alone).
#[derive(Debug, Clone, Copy, Default)]
pub struct Multivariate;

/// Feature count (8 weights + 1 bias = 9 carried variables).
pub const MULTI_FEATURES: usize = 8;

impl MlBenchmark for Multivariate {
    fn name(&self) -> &'static str {
        "Multivariate"
    }

    fn loop_depth(&self) -> usize {
        1
    }

    fn carried_vars(&self) -> Vec<usize> {
        vec![MULTI_FEATURES + 1]
    }

    fn trace(&self, spec: &BenchSpec, trips: &[TripCount]) -> Function {
        assert_eq!(trips.len(), 1);
        let n = spec.num_elems;
        let mut b = FunctionBuilder::new("multivariate_regression", spec.slots);
        let xs: Vec<_> = (0..MULTI_FEATURES)
            .map(|i| b.input_cipher(format!("x{i}")))
            .collect();
        let y = b.input_cipher("y");
        let inits: Vec<_> = (0..=MULTI_FEATURES).map(|_| b.const_splat(0.0)).collect();
        let r = b.for_loop(trips[0].clone(), &inits, n, |b, args| {
            let bias = args[MULTI_FEATURES];
            let mut pred = bias;
            for (i, &xi) in xs.iter().enumerate() {
                let t = b.mul(args[i], xi);
                pred = b.add(pred, t);
            }
            let err = b.sub(pred, y);
            let mut out = Vec::with_capacity(MULTI_FEATURES + 1);
            for (i, &xi) in xs.iter().enumerate() {
                let e = b.mul(err, xi);
                let g = mean_all(b, e, n, n as f64 / LR);
                out.push(b.sub(args[i], g));
            }
            let gb = mean_all(b, err, n, n as f64 / LR);
            out.push(b.sub(bias, gb));
            out
        });
        b.ret(&r);
        b.finish()
    }

    fn inputs(&self, spec: &BenchSpec) -> Inputs {
        let (xs, y) = data::multivariate_data(spec.num_elems, MULTI_FEATURES, spec.seed);
        let mut inputs = Inputs::new().cipher("y", y);
        for (i, x) in xs.into_iter().enumerate() {
            inputs = inputs.cipher(format!("x{i}"), x);
        }
        inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::analysis::max_mult_depth;
    use halo_runtime::reference_run;

    fn converged_weights(bench: &dyn MlBenchmark, iters: u64) -> Vec<Vec<f64>> {
        let spec = BenchSpec {
            slots: 256,
            num_elems: 256,
            seed: 1,
        };
        let f = bench.trace_dynamic(&spec);
        let inputs = bench.inputs(&spec).env("iters", iters);
        reference_run(&f, &inputs, spec.slots).unwrap()
    }

    #[test]
    fn linear_converges_to_ground_truth() {
        let out = converged_weights(&Linear, 60);
        let (w, b) = (out[0][0], out[1][0]);
        assert!((w - 0.7).abs() < 0.05, "w = {w}");
        assert!((b - 0.1).abs() < 0.05, "b = {b}");
    }

    #[test]
    fn polynomial_fit_predicts_the_data() {
        // x² and the constant are correlated features (E[x²] = 1/3), so
        // coefficient identification is slow — but the *fit* converges
        // quickly. Judge by prediction RMSE against the noiseless model.
        let out = converged_weights(&Polynomial, 400);
        let (w2, w1, b) = (out[0][0], out[1][0], out[2][0]);
        let mut worst: f64 = 0.0;
        for i in 0..=20 {
            let x = -1.0 + 0.1 * f64::from(i);
            let pred = w2 * x * x + w1 * x + b;
            // Data model: c = [c₀, c₁, c₂] = [0.1, −0.4, 0.6].
            let want = 0.6 * x * x - 0.4 * x + 0.1;
            worst = worst.max((pred - want).abs());
        }
        assert!(
            worst < 0.05,
            "max fit error = {worst} (w2={w2}, w1={w1}, b={b})"
        );
    }

    #[test]
    fn multivariate_converges_on_all_weights() {
        let out = converged_weights(&Multivariate, 120);
        for (i, o) in out.iter().take(MULTI_FEATURES).enumerate() {
            let want = 0.3 + 0.1 * i as f64;
            assert!((o[0] - want).abs() < 0.06, "w{i} = {} want {want}", o[0]);
        }
        assert!((out[MULTI_FEATURES][0] - 0.2).abs() < 0.06);
    }

    #[test]
    fn regression_bodies_are_shallow() {
        // The paper's unrolling case: short bodies (§6.2).
        let spec = BenchSpec::test_small();
        for bench in [&Linear as &dyn MlBenchmark, &Polynomial, &Multivariate] {
            let f = bench.trace_dynamic(&spec);
            let body = f.for_body(f.loops_in_block(f.entry)[0]);
            let depth = max_mult_depth(&f, body);
            assert!(
                (2..=4).contains(&depth),
                "{}: depth = {depth}",
                bench.name()
            );
        }
    }
}
