//! Linear SVM via Pegasos-style subgradient descent (paper §7): 3
//! loop-carried variables (weight, bias, averaged weight) and a composite
//! `sign` for the hinge-violation indicator.

use halo_ir::op::TripCount;
use halo_ir::{Function, FunctionBuilder};
use halo_runtime::Inputs;

use crate::approx::sign::step_approx;
use crate::bench::{mean_all, BenchSpec, MlBenchmark};
use crate::data;

/// Learning rate.
const LR: f64 = 0.5;
/// L2 regularization factor applied per step (`w ← (1−λ)·w + …`).
const DECAY: f64 = 0.02;
/// Averaging rate for the Polyak-averaged weight.
const AVG: f64 = 0.125;
/// Margin scaling so `1 − y·f(x)` fits the sign approximation's domain.
const MARGIN_SCALE: f64 = 0.25;

/// Linear SVM on 1-D data with labels `±1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Svm;

impl MlBenchmark for Svm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn loop_depth(&self) -> usize {
        1
    }

    fn carried_vars(&self) -> Vec<usize> {
        vec![3]
    }

    fn approx_functions(&self) -> &'static str {
        "sign"
    }

    fn trace(&self, spec: &BenchSpec, trips: &[TripCount]) -> Function {
        assert_eq!(trips.len(), 1);
        let n = spec.num_elems;
        let mut b = FunctionBuilder::new("svm", spec.slots);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        // Encrypted warm-start weights: all three carried variables are
        // ciphertexts from iteration one (no peeling; paper's ×40 SVM
        // count structure).
        let w0 = b.input_cipher("w0");
        let b0 = b.input_cipher("b0");
        let wa0 = b.input_cipher("wavg0");
        let yx = b.mul(y, x); // hoisted: y·x computed once outside
        let r = b.for_loop(trips[0].clone(), &[w0, b0, wa0], n, |b, args| {
            let (w, bias, wavg) = (args[0], args[1], args[2]);
            // Margin m = y·(w·x + b); violation if m < 1.
            let wx = b.mul(w, x);
            let f = b.add(wx, bias);
            let m = b.mul(y, f);
            let one = b.const_splat(1.0);
            let viol_raw = b.sub(one, m);
            let scale = b.const_splat(MARGIN_SCALE);
            let viol_scaled = b.mul(viol_raw, scale);
            let ind = step_approx(b, viol_scaled);
            // Subgradient over violators.
            let gyx = b.mul(ind, yx);
            let gw = mean_all(b, gyx, n, n as f64 / LR);
            let gy = b.mul(ind, y);
            let gb = mean_all(b, gy, n, n as f64 / LR);
            // w ← (1−λ)w + gw;  b ← b + gb.
            let keep = b.const_splat(1.0 - DECAY);
            let wk = b.mul(w, keep);
            let w2 = b.add(wk, gw);
            let b2 = b.add(bias, gb);
            // Polyak average: wavg ← (1−β)·wavg + β·w₂.
            let beta = b.const_splat(AVG);
            let keep_avg = b.const_splat(1.0 - AVG);
            let wa_keep = b.mul(wavg, keep_avg);
            let wa_new = b.mul(w2, beta);
            let wa2 = b.add(wa_keep, wa_new);
            vec![w2, b2, wa2]
        });
        b.ret(&r);
        b.finish()
    }

    fn inputs(&self, spec: &BenchSpec) -> Inputs {
        let (x, y) = data::svm_data(spec.num_elems, 0.1, spec.seed);
        Inputs::new()
            .cipher("x", x)
            .cipher("y", y)
            .cipher("w0", vec![0.1])
            .cipher("b0", vec![0.0])
            .cipher("wavg0", vec![0.1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_ir::analysis::max_mult_depth;
    use halo_runtime::reference_run;

    #[test]
    fn learns_a_separating_boundary() {
        let spec = BenchSpec {
            slots: 512,
            num_elems: 512,
            seed: 9,
        };
        let f = Svm.trace_dynamic(&spec);
        let inputs = Svm.inputs(&spec).env("iters", 40);
        let out = reference_run(&f, &inputs, spec.slots).unwrap();
        let (w, bias) = (out[0][0], out[1][0]);
        // Boundary at x = 0.1: classifier sign(w·x + b) must match labels.
        let (xv, yv) = data::svm_data(spec.num_elems, 0.1, spec.seed);
        let correct = xv
            .iter()
            .zip(&yv)
            .filter(|(&xi, &yi)| ((w * xi + bias) >= 0.0) == (yi > 0.0))
            .count();
        let acc = correct as f64 / xv.len() as f64;
        assert!(acc > 0.9, "accuracy = {acc}, w = {w}, b = {bias}");
        // The averaged weight tracks w.
        let wavg = out[2][0];
        assert!(
            (wavg - w).abs() < 0.5 * w.abs() + 0.2,
            "wavg = {wavg}, w = {w}"
        );
    }

    #[test]
    fn body_depth_forces_one_in_body_bootstrap() {
        let spec = BenchSpec::test_small();
        let f = Svm.trace_dynamic(&spec);
        let body = f.for_body(f.loops_in_block(f.entry)[0]);
        let depth = max_mult_depth(&f, body);
        assert!(
            (17..=24).contains(&depth),
            "depth = {depth}: just past one budget, like the paper's SVM"
        );
    }
}
