//! Quickstart: trace an FHE program with a *dynamic-trip-count* loop,
//! compile it with HALO, and run it under RNS-CKKS simulation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use halo_fhe::prelude::*;

fn main() {
    // --- 1. Trace the program -------------------------------------------
    // Gradient descent fitting y ≈ w·x, iterated `iters` times — where
    // `iters` is a *runtime* value. Full-unrolling FHE compilers cannot
    // compile this; HALO's type-matched loops can.
    let slots = 1 << 10;
    let mut b = FunctionBuilder::new("fit_line", slots);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let w0 = b.const_splat(0.0); // plaintext init → HALO peels iteration 1
    let lr_over_n = 0.5 / 256.0;
    let result = b.for_loop(TripCount::dynamic("iters"), &[w0], 256, |b, args| {
        let w = args[0];
        let pred = b.mul(w, x);
        let err = b.sub(pred, y);
        let g = b.mul(err, x);
        let gsum = b.rotate_sum(g, 256);
        let lr = b.const_splat(lr_over_n);
        let step = b.mul(gsum, lr);
        vec![b.sub(w, step)]
    });
    b.ret(&result);
    let traced = b.finish();
    println!("traced program:\n{}", halo_fhe::ir::print::print(&traced));

    // --- 2. Compile under HALO ------------------------------------------
    let params = CkksParams {
        poly_degree: slots * 2,
        ..CkksParams::paper()
    };
    let opts = CompileOptions::new(params.clone());
    let compiled = compile(&traced, CompilerConfig::Halo, &opts).expect("compiles");
    println!(
        "compiled with HALO: peeled {} loop(s), {} static bootstrap(s), {} target(s) tuned",
        compiled.peeled, compiled.static_bootstraps, compiled.tuned
    );

    // --- 3. Execute on encrypted data -----------------------------------
    let xs: Vec<f64> = (0..256)
        .map(|i| -1.0 + 2.0 * f64::from(i) / 255.0)
        .collect();
    let ys: Vec<f64> = xs.iter().map(|v| 0.8 * v).collect();
    let backend = SimBackend::new(params);
    for iters in [5u64, 20, 60] {
        let inputs = Inputs::new()
            .cipher("x", xs.clone())
            .cipher("y", ys.clone())
            .env("iters", iters);
        let out = Executor::new(&backend)
            .run(&compiled.function, &inputs)
            .expect("runs");
        println!(
            "iters = {iters:>2}: w = {:+.4}  (true 0.8) — {} bootstraps, modeled {:.2} s",
            out.outputs[0][0],
            out.stats.bootstrap_count,
            out.stats.total_seconds()
        );
    }
    println!("same compiled binary served every iteration count — no recompilation.");
}
