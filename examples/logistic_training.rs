//! Privacy-preserving logistic-regression training: the paper's Logistic
//! benchmark end to end, comparing all five compiler configurations.
//!
//! ```sh
//! cargo run --example logistic_training
//! ```

use halo_fhe::ml::bench::{BenchSpec, Logistic, MlBenchmark};
use halo_fhe::prelude::*;

fn main() {
    let spec = BenchSpec {
        slots: 1 << 10,
        num_elems: 256,
        seed: 7,
    };
    let params = CkksParams {
        poly_degree: spec.slots * 2,
        ..CkksParams::paper()
    };
    let opts = CompileOptions::new(params.clone());
    let iters = 25u64;

    let traced = Logistic.trace_dynamic(&spec);
    let inputs = Logistic.inputs(&spec).env("iters", iters);
    let plain = reference_run(&traced, &inputs, spec.slots).expect("reference");
    println!(
        "plaintext training, {iters} iterations: w = {:+.4} (degree-96 sigmoid inside the loop)",
        plain[0][0]
    );
    println!();
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>10}",
        "configuration", "boots", "modeled (s)", "boot (s)", "RMSE"
    );

    for config in CompilerConfig::ALL {
        // DaCapo needs the loop unrolled to a constant trip count.
        let program = if config == CompilerConfig::DaCapo {
            Logistic.trace_constant(&spec, &[iters])
        } else {
            traced.clone()
        };
        let compiled = compile(&program, config, &opts).expect("compiles");
        let backend = SimBackend::new(params.clone());
        let out = Executor::new(&backend)
            .run(&compiled.function, &inputs)
            .expect("runs");
        let err = rmse(
            &out.outputs[0][..spec.num_elems],
            &plain[0][..spec.num_elems],
        );
        println!(
            "{:<18} {:>6} {:>12.2} {:>12.2} {:>10.2e}",
            config.name(),
            out.stats.bootstrap_count,
            out.stats.total_seconds(),
            out.stats.bootstrap_us / 1e6,
            err
        );
    }
    println!();
    println!(
        "HALO's win here comes from bootstrap *target tuning* (§6.3): one \
         carried variable defeats packing and the deep sigmoid body defeats \
         unrolling, but the head bootstrap only needs the body's depth."
    );
}
