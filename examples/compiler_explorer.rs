//! Compiler explorer: print the IR a program goes through at each stage of
//! the HALO pipeline — the Figure 2 / Figure 3 walkthrough of the paper,
//! live.
//!
//! ```sh
//! cargo run --example compiler_explorer
//! ```

use halo_fhe::compiler::{pack, peel, scale, tune, unroll};
use halo_fhe::ir::print::print;
use halo_fhe::prelude::*;

fn main() {
    // The paper's Figure 2 program: y and a loop-carried, a starts plain.
    let mut b = FunctionBuilder::new("figure2", 32);
    let x = b.input_cipher("x");
    let y0 = b.input_cipher("y");
    let a0 = b.const_splat(1.0);
    let r = b.for_loop(TripCount::dynamic("k"), &[y0, a0], 4, |b, args| {
        let x2 = b.mul(x, args[0]);
        let y2 = b.mul(x2, x2);
        let a2 = b.add(args[1], y2);
        vec![y2, a2]
    });
    b.ret(&r);
    let mut f = b.finish();

    println!("===== traced (levels unset, `a` is plain) =====");
    println!("{}", print(&f));

    let peeled = peel::peel_loops(&mut f);
    println!("===== after peeling ({peeled} loop) — Solution A-1 =====");
    println!("{}", print(&f));

    let unrolled = unroll::unroll_loops(&mut f, 16, true);
    println!("===== after level-aware unrolling ({unrolled} loop) — Solution B-2 =====");
    println!("{}", print(&f));

    let packed = pack::pack_loops(&mut f);
    println!("===== after packing ({packed} loop) — Solution B-1 =====");
    println!("{}", print(&f));

    let opts = CompileOptions::new(CkksParams {
        poly_degree: 64,
        ..CkksParams::paper()
    });
    scale::assign_levels(&mut f, &opts).expect("levels");
    println!("===== after type matching + scale management — Solution A-2 =====");
    println!("{}", print(&f));

    let tuned = tune::tune_bootstrap_targets(&mut f);
    halo_fhe::compiler::dce::run(&mut f);
    println!("===== after target-level tuning ({tuned} bootstrap) — Solution B-3 =====");
    println!("{}", print(&f));
}
