//! Encrypted K-means clustering with a *data-dependent* stopping budget:
//! the operator picks the iteration count at run time, long after
//! compilation — the scenario full-unrolling compilers cannot serve.
//!
//! ```sh
//! cargo run --example kmeans_clustering
//! ```

use halo_fhe::ml::bench::{BenchSpec, KMeans, MlBenchmark};
use halo_fhe::ml::data;
use halo_fhe::prelude::*;

fn main() {
    let spec = BenchSpec {
        slots: 512,
        num_elems: 128,
        seed: 3,
    };
    let params = CkksParams {
        poly_degree: spec.slots * 2,
        ..CkksParams::paper()
    };
    let opts = CompileOptions::new(params.clone());

    // Compile ONCE with a dynamic trip count.
    let traced = KMeans.trace_dynamic(&spec);
    let compiled = compile(&traced, CompilerConfig::Halo, &opts).expect("compiles");
    println!(
        "compiled once: {} static bootstraps in the loop body (deep sign-based \
         assignment step needs in-body resets)",
        compiled.static_bootstraps
    );
    println!();

    // Two 1-D clusters around 0.25 / 0.75; centroids start badly (0.4, 0.6).
    let points = data::cluster_data(spec.num_elems, [0.25, 0.75], 0.05, spec.seed);
    println!(
        "{:>5} {:>10} {:>10} {:>8} {:>12}",
        "iters", "c0", "c1", "boots", "modeled (s)"
    );
    for iters in [1u64, 2, 4, 8, 12] {
        let inputs = Inputs::new()
            .cipher("x", points.clone())
            .cipher("c0", vec![0.4])
            .cipher("c1", vec![0.6])
            .env("iters", iters);
        let backend = SimBackend::new(params.clone());
        let out = Executor::new(&backend)
            .run(&compiled.function, &inputs)
            .expect("runs");
        println!(
            "{iters:>5} {:>10.4} {:>10.4} {:>8} {:>12.2}",
            out.outputs[0][0],
            out.outputs[1][0],
            out.stats.bootstrap_count,
            out.stats.total_seconds()
        );
    }
    println!();
    println!("true centers: 0.25 / 0.75 — converged without ever decrypting the data.");
}
