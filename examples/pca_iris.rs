//! Nested-loop PCA on iris-like data (the paper's §7.4 case study):
//! an outer power-iteration loop with an inner inverse-square-root loop,
//! both with dynamic trip counts.
//!
//! ```sh
//! cargo run --example pca_iris
//! ```

use halo_fhe::ml::bench::pca::{dominant_eigenvector, sample_count};
use halo_fhe::ml::bench::{BenchSpec, MlBenchmark, Pca};
use halo_fhe::ml::data;
use halo_fhe::prelude::*;

fn main() {
    let spec = BenchSpec {
        slots: 512,
        num_elems: 128,
        seed: 11,
    };
    let params = CkksParams {
        poly_degree: spec.slots * 2,
        ..CkksParams::paper()
    };
    let opts = CompileOptions::new(params.clone());

    let traced = Pca.trace_dynamic(&spec);
    let compiled = compile(&traced, CompilerConfig::Halo, &opts).expect("compiles");
    println!(
        "nested loops compiled (outer power iteration × inner invsqrt); \
         {} static bootstraps",
        compiled.static_bootstraps
    );

    let samples = data::iris_like(sample_count(spec.num_elems), spec.seed);
    let truth = dominant_eigenvector(&samples);
    println!("plaintext dominant eigenvector: {truth:+.4?}");
    println!();
    println!(
        "{:>14} {:>40} {:>8} {:>9}",
        "(outer,inner)", "encrypted principal direction", "boots", "cos-sim"
    );

    for (outer, inner) in [(2u64, 2u64), (4, 4), (8, 4), (8, 8)] {
        let inputs = Pca.inputs(&spec).env("outer", outer).env("inner", inner);
        let backend = SimBackend::new(params.clone());
        let out = Executor::new(&backend)
            .run(&compiled.function, &inputs)
            .expect("runs");
        let v: Vec<f64> = (0..4).map(|j| out.outputs[0][j * spec.num_elems]).collect();
        let dot: f64 = v.iter().zip(&truth).map(|(a, b)| a * b).sum();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        println!(
            "{:>14} {:>40} {:>8} {:>9.5}",
            format!("({outer},{inner})"),
            format!("[{:+.3}, {:+.3}, {:+.3}, {:+.3}]", v[0], v[1], v[2], v[3]),
            out.stats.bootstrap_count,
            dot.abs() / norm.max(1e-12)
        );
    }
    println!();
    println!(
        "more iterations → tighter alignment with the plaintext eigenvector, \
         all from one compiled program."
    );
}
